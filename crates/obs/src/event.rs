//! The cross-layer trace event taxonomy.
//!
//! Events are deliberately flat and numeric: paths are dense indices
//! (0 = WiFi, 1 = cellular in the two-path sessions), sizes are bytes,
//! durations are seconds as `f64`. That keeps the enum free of
//! dependencies on the transport/link/dash crates (which all sit
//! *above* this one in the dependency graph) and keeps NDJSON lines
//! trivially machine-readable.

use mpdash_results::Json;
use mpdash_sim::SimTime;

/// One structured trace event. Stamped with virtual [`SimTime`] at the
/// emission site (the timestamp travels alongside, see
/// [`TraceSink::record`](crate::TraceSink::record)).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// The deadline scheduler toggled the costly path, with the
    /// feasibility inputs that drove the decision (Algorithm 1).
    SchedulerToggle {
        /// Whether the cellular path is enabled after this decision.
        cell_enabled: bool,
        /// Preferred-path (WiFi) throughput estimate at decision time.
        wifi_estimate_mbps: f64,
        /// Bytes of the current transfer already delivered.
        received: u64,
        /// Total bytes of the current transfer.
        size: u64,
        /// The (α-shrunk) deadline window granted for the transfer.
        window_s: f64,
        /// Seconds elapsed since the transfer started.
        elapsed_s: f64,
    },
    /// A subflow's RTO fired with an empty window: it is considered
    /// failed and enters revival backoff.
    SubflowFailed {
        /// Dense path index.
        path: usize,
    },
    /// A failed subflow came back (revival probe succeeded).
    SubflowRevived {
        /// Dense path index.
        path: usize,
    },
    /// A congestion-control sample taken when an ACK advanced a subflow.
    PathSample {
        /// Dense path index.
        path: usize,
        /// Congestion window, bytes.
        cwnd: u64,
        /// Smoothed RTT, milliseconds (`None` until first measurement).
        srtt_ms: Option<f64>,
    },
    /// The scheduler's desired path mask changed and a DSS-borne signal
    /// was sent to the peer (the MP_DASH socket-option path in §5.1).
    DssSignal {
        /// New desired mask, bit `i` = path `i` enabled.
        mask: u32,
    },
    /// The ABR algorithm chose a level for a chunk.
    AbrChoice {
        /// Chunk index.
        chunk: usize,
        /// Chosen bitrate level.
        level: usize,
        /// Throughput estimate the decision was based on.
        estimate_mbps: f64,
    },
    /// A chunk fetch was admitted to the deadline scheduler
    /// (`MP_DASH_ENABLE`).
    DeadlineGranted {
        /// Chunk index.
        chunk: usize,
        /// Chunk size, bytes.
        size: u64,
        /// Deadline window, seconds.
        window_s: f64,
    },
    /// The adapter bypassed the deadline scheduler for a chunk (e.g.
    /// buffer below the urgency threshold).
    DeadlineBypassed {
        /// Chunk index.
        chunk: usize,
    },
    /// A chunk with a deadline finished within its window.
    DeadlineHit {
        /// Chunk index.
        chunk: usize,
        /// Seconds of slack left (non-negative).
        margin_s: f64,
    },
    /// A chunk with a deadline finished late.
    DeadlineMissed {
        /// Chunk index.
        chunk: usize,
        /// Seconds past the window (positive = how late).
        overrun_s: f64,
    },
    /// A chunk finished downloading (always emitted, deadline or not).
    ChunkFetched {
        /// Chunk index.
        chunk: usize,
        /// Bitrate level it was fetched at.
        level: usize,
        /// Body size, bytes.
        size: u64,
        /// Virtual time the request was issued, seconds.
        started_s: f64,
    },
    /// An injected link fault became active (first observed at the
    /// link's send path).
    FaultActivated {
        /// Dense path index of the afflicted link.
        path: usize,
        /// Fault kind, e.g. `"burst_loss"`, `"disassociation"`.
        kind: &'static str,
        /// Virtual time the fault window ends, seconds.
        until_s: f64,
    },
    /// An injected link fault's window ended.
    FaultCleared {
        /// Dense path index of the afflicted link.
        path: usize,
        /// Fault kind, e.g. `"rtt_spike"`, `"rate_collapse"`.
        kind: &'static str,
    },
    /// The player's playback state changed (startup→playing, stall,
    /// resume, finish) or a chunk landed in the buffer.
    BufferTransition {
        /// `"started"`, `"stalled"`, `"resumed"`, `"chunk_buffered"`,
        /// or `"finished"`.
        state: &'static str,
        /// Buffered playout after the transition, seconds.
        buffer_s: f64,
    },
    /// The request lifecycle detected a dead or doomed fetch: no
    /// delivered bytes for the stall window, the deadline-derived
    /// timeout elapsed, or the scheduler's feasibility estimate said the
    /// chunk can no longer make its deadline.
    RequestTimeout {
        /// Chunk index.
        chunk: usize,
        /// What tripped: `"stall"`, `"deadline"`, or `"infeasible"`.
        cause: &'static str,
        /// Seconds since the fetch (first request) started.
        after_s: f64,
    },
    /// The fetch was abandoned mid-download; a cancel is on its way to
    /// the server.
    RequestAbandoned {
        /// Chunk index.
        chunk: usize,
        /// Useful body bytes the client had at the abandon decision.
        received: u64,
        /// Body size the fetch was aiming for.
        size: u64,
    },
    /// A byte-range resume re-requested the missing tail of an
    /// abandoned fetch.
    RequestResumed {
        /// Chunk index.
        chunk: usize,
        /// First byte of the re-requested range.
        from: u64,
        /// Body size the resumed fetch is aiming for (may be smaller
        /// than the original after an ABR downshift).
        size: u64,
        /// Bitrate level of the resumed tail.
        level: usize,
    },
    /// A server error (5xx) triggered a seeded-backoff retry.
    RequestRetried {
        /// Chunk index.
        chunk: usize,
        /// Retry attempt number (1 = first retry).
        attempt: u64,
        /// Backoff delay before the re-request, seconds.
        backoff_s: f64,
    },
    /// An injected server-side fault window became active (first
    /// observed when a request was served under it).
    ServerFaultActivated {
        /// Fault kind, e.g. `"error_burst"`, `"stalled_body"`.
        kind: &'static str,
        /// Virtual time the fault window ends, seconds.
        until_s: f64,
    },
    /// An injected server-side fault window ended.
    ServerFaultCleared {
        /// Fault kind, e.g. `"slow_first_byte"`.
        kind: &'static str,
    },
    /// A packet sat in a shared bottleneck queue before its service
    /// started (multi-session fleets only; zero-wait departures are not
    /// emitted).
    SharedQueueWait {
        /// Dense path index of the subflow the packet belongs to.
        path: usize,
        /// Seconds between the offer and the start of service.
        waited_s: f64,
        /// Wire size of the packet, bytes.
        size: u64,
    },
    /// The origin pool routed a chunk fetch to an origin.
    OriginRouted {
        /// Chunk index.
        chunk: usize,
        /// Dense origin index inside the pool.
        origin: usize,
        /// Why this routing happened: `"initial"`, `"retry"`,
        /// `"resume"`, or `"hedge"`.
        reason: &'static str,
    },
    /// A per-origin circuit breaker changed state.
    OriginHealth {
        /// Dense origin index inside the pool.
        origin: usize,
        /// New breaker state: `"closed"`, `"open"`, or `"half_open"`.
        state: &'static str,
        /// Consecutive-failure streak at the transition.
        failures: u64,
    },
    /// A hedged fetch launched (`winner` absent) or resolved (`winner`
    /// present; exactly one resolution per launch).
    Hedge {
        /// Chunk index.
        chunk: usize,
        /// Origin the primary fetch was on.
        origin: usize,
        /// Origin the hedge raced on.
        hedge_origin: usize,
        /// `"primary"` or `"hedge"` once the race resolves.
        winner: Option<&'static str>,
        /// Loser's delivered body bytes, accounted as waste.
        wasted: u64,
    },
    /// A losing hedge request finished draining after its race resolved
    /// (primary wins only — a hedge win accounts its waste inside the
    /// resolution event). Separate from [`TraceEvent::Hedge`] because
    /// the drain can outlive the chunk that raced.
    HedgeLoserSettled {
        /// Chunk index the race was fetching.
        chunk: usize,
        /// Body bytes the loser delivered, accounted as waste.
        wasted: u64,
    },
    /// A shared segment-cache interaction for a chunk fetch.
    Cache {
        /// Chunk index.
        chunk: usize,
        /// Bitrate level of the segment.
        level: usize,
        /// `"hit"`, `"miss"`, or `"insert"`.
        outcome: &'static str,
        /// Segment body bytes involved.
        bytes: u64,
    },
    /// The packet scheduler assigned one new segment to a subflow, with
    /// the inputs that won the pick (one event per scheduled segment;
    /// retransmissions and reinjections are not scheduler decisions).
    SchedulerPick {
        /// Dense path index the segment was assigned to.
        path: usize,
        /// Segment payload length, bytes.
        len: u64,
        /// The chosen path's smoothed RTT at decision time, milliseconds
        /// (`None` before the first sample).
        srtt_ms: Option<f64>,
        /// The chosen path's shared-bottleneck occupancy at decision
        /// time, bytes (`None` on private links).
        queue_bytes: Option<u64>,
    },
    /// A churning client reached its viewing duration and departed:
    /// no further chunks will be requested and the session finalizes a
    /// partial report once its transport drains.
    SessionDeparted {
        /// Seconds of content downloaded when the viewer left.
        watched_s: f64,
        /// Chunks downloaded before departing.
        chunks: u64,
    },
    /// The fleet overload policy refused an arriving session (admission
    /// cap reached, or the shared queue already past its threshold).
    SessionShed {
        /// Client index inside the fleet.
        client: usize,
        /// Active (admitted, unfinished) sessions at the decision.
        active: u64,
        /// Deepest shared-bottleneck occupancy at the decision, bytes.
        queue_bytes: u64,
    },
}

impl TraceEvent {
    /// Stable, snake_case discriminant name (the `kind` field of the
    /// NDJSON encoding).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::SchedulerToggle { .. } => "scheduler_toggle",
            TraceEvent::SubflowFailed { .. } => "subflow_failed",
            TraceEvent::SubflowRevived { .. } => "subflow_revived",
            TraceEvent::PathSample { .. } => "path_sample",
            TraceEvent::DssSignal { .. } => "dss_signal",
            TraceEvent::AbrChoice { .. } => "abr_choice",
            TraceEvent::DeadlineGranted { .. } => "deadline_granted",
            TraceEvent::DeadlineBypassed { .. } => "deadline_bypassed",
            TraceEvent::DeadlineHit { .. } => "deadline_hit",
            TraceEvent::DeadlineMissed { .. } => "deadline_missed",
            TraceEvent::ChunkFetched { .. } => "chunk_fetched",
            TraceEvent::FaultActivated { .. } => "fault_activated",
            TraceEvent::FaultCleared { .. } => "fault_cleared",
            TraceEvent::BufferTransition { .. } => "buffer_transition",
            TraceEvent::RequestTimeout { .. } => "request_timeout",
            TraceEvent::RequestAbandoned { .. } => "request_abandoned",
            TraceEvent::RequestResumed { .. } => "request_resumed",
            TraceEvent::RequestRetried { .. } => "request_retried",
            TraceEvent::ServerFaultActivated { .. } => "server_fault_activated",
            TraceEvent::ServerFaultCleared { .. } => "server_fault_cleared",
            TraceEvent::SharedQueueWait { .. } => "shared_queue_wait",
            TraceEvent::OriginRouted { .. } => "origin_routed",
            TraceEvent::OriginHealth { .. } => "origin_health",
            TraceEvent::Hedge { .. } => "hedge",
            TraceEvent::HedgeLoserSettled { .. } => "hedge_loser_settled",
            TraceEvent::Cache { .. } => "cache",
            TraceEvent::SchedulerPick { .. } => "scheduler_pick",
            TraceEvent::SessionDeparted { .. } => "session_departed",
            TraceEvent::SessionShed { .. } => "session_shed",
        }
    }

    /// Deterministic JSON encoding: `{"t_s": ..., "kind": ..., fields}`.
    /// One such object per line is the NDJSON trace format.
    pub fn to_json(&self, t: SimTime) -> Json {
        let mut members: Vec<(String, Json)> = vec![
            ("t_s".into(), Json::Float(t.as_secs_f64())),
            ("kind".into(), Json::from(self.kind())),
        ];
        let mut push = |k: &str, v: Json| members.push((k.to_string(), v));
        match self {
            TraceEvent::SchedulerToggle {
                cell_enabled,
                wifi_estimate_mbps,
                received,
                size,
                window_s,
                elapsed_s,
            } => {
                push("cell_enabled", Json::from(*cell_enabled));
                push("wifi_estimate_mbps", Json::Float(*wifi_estimate_mbps));
                push("received", Json::from(*received));
                push("size", Json::from(*size));
                push("window_s", Json::Float(*window_s));
                push("elapsed_s", Json::Float(*elapsed_s));
            }
            TraceEvent::SubflowFailed { path } | TraceEvent::SubflowRevived { path } => {
                push("path", Json::from(*path));
            }
            TraceEvent::PathSample {
                path,
                cwnd,
                srtt_ms,
            } => {
                push("path", Json::from(*path));
                push("cwnd", Json::from(*cwnd));
                push("srtt_ms", srtt_ms.map(Json::Float).unwrap_or(Json::Null));
            }
            TraceEvent::DssSignal { mask } => push("mask", Json::from(u64::from(*mask))),
            TraceEvent::AbrChoice {
                chunk,
                level,
                estimate_mbps,
            } => {
                push("chunk", Json::from(*chunk));
                push("level", Json::from(*level));
                push("estimate_mbps", Json::Float(*estimate_mbps));
            }
            TraceEvent::DeadlineGranted {
                chunk,
                size,
                window_s,
            } => {
                push("chunk", Json::from(*chunk));
                push("size", Json::from(*size));
                push("window_s", Json::Float(*window_s));
            }
            TraceEvent::DeadlineBypassed { chunk } => push("chunk", Json::from(*chunk)),
            TraceEvent::DeadlineHit { chunk, margin_s } => {
                push("chunk", Json::from(*chunk));
                push("margin_s", Json::Float(*margin_s));
            }
            TraceEvent::DeadlineMissed { chunk, overrun_s } => {
                push("chunk", Json::from(*chunk));
                push("overrun_s", Json::Float(*overrun_s));
            }
            TraceEvent::ChunkFetched {
                chunk,
                level,
                size,
                started_s,
            } => {
                push("chunk", Json::from(*chunk));
                push("level", Json::from(*level));
                push("size", Json::from(*size));
                push("started_s", Json::Float(*started_s));
            }
            TraceEvent::FaultActivated {
                path,
                kind,
                until_s,
            } => {
                push("path", Json::from(*path));
                push("fault", Json::from(*kind));
                push("until_s", Json::Float(*until_s));
            }
            TraceEvent::FaultCleared { path, kind } => {
                push("path", Json::from(*path));
                push("fault", Json::from(*kind));
            }
            TraceEvent::BufferTransition { state, buffer_s } => {
                push("state", Json::from(*state));
                push("buffer_s", Json::Float(*buffer_s));
            }
            TraceEvent::RequestTimeout {
                chunk,
                cause,
                after_s,
            } => {
                push("chunk", Json::from(*chunk));
                push("cause", Json::from(*cause));
                push("after_s", Json::Float(*after_s));
            }
            TraceEvent::RequestAbandoned {
                chunk,
                received,
                size,
            } => {
                push("chunk", Json::from(*chunk));
                push("received", Json::from(*received));
                push("size", Json::from(*size));
            }
            TraceEvent::RequestResumed {
                chunk,
                from,
                size,
                level,
            } => {
                push("chunk", Json::from(*chunk));
                push("from", Json::from(*from));
                push("size", Json::from(*size));
                push("level", Json::from(*level));
            }
            TraceEvent::RequestRetried {
                chunk,
                attempt,
                backoff_s,
            } => {
                push("chunk", Json::from(*chunk));
                push("attempt", Json::from(*attempt));
                push("backoff_s", Json::Float(*backoff_s));
            }
            TraceEvent::ServerFaultActivated { kind, until_s } => {
                push("fault", Json::from(*kind));
                push("until_s", Json::Float(*until_s));
            }
            TraceEvent::ServerFaultCleared { kind } => {
                push("fault", Json::from(*kind));
            }
            TraceEvent::SharedQueueWait {
                path,
                waited_s,
                size,
            } => {
                push("path", Json::from(*path));
                push("waited_s", Json::Float(*waited_s));
                push("size", Json::from(*size));
            }
            TraceEvent::OriginRouted {
                chunk,
                origin,
                reason,
            } => {
                push("chunk", Json::from(*chunk));
                push("origin", Json::from(*origin));
                push("reason", Json::from(*reason));
            }
            TraceEvent::OriginHealth {
                origin,
                state,
                failures,
            } => {
                push("origin", Json::from(*origin));
                push("state", Json::from(*state));
                push("failures", Json::from(*failures));
            }
            TraceEvent::Hedge {
                chunk,
                origin,
                hedge_origin,
                winner,
                wasted,
            } => {
                push("chunk", Json::from(*chunk));
                push("origin", Json::from(*origin));
                push("hedge_origin", Json::from(*hedge_origin));
                push("winner", winner.map(Json::from).unwrap_or(Json::Null));
                push("wasted", Json::from(*wasted));
            }
            TraceEvent::HedgeLoserSettled { chunk, wasted } => {
                push("chunk", Json::from(*chunk));
                push("wasted", Json::from(*wasted));
            }
            TraceEvent::Cache {
                chunk,
                level,
                outcome,
                bytes,
            } => {
                push("chunk", Json::from(*chunk));
                push("level", Json::from(*level));
                push("outcome", Json::from(*outcome));
                push("bytes", Json::from(*bytes));
            }
            TraceEvent::SchedulerPick {
                path,
                len,
                srtt_ms,
                queue_bytes,
            } => {
                push("path", Json::from(*path));
                push("len", Json::from(*len));
                push("srtt_ms", srtt_ms.map(Json::Float).unwrap_or(Json::Null));
                push(
                    "queue_bytes",
                    queue_bytes.map(Json::from).unwrap_or(Json::Null),
                );
            }
            TraceEvent::SessionDeparted { watched_s, chunks } => {
                push("watched_s", Json::Float(*watched_s));
                push("chunks", Json::from(*chunks));
            }
            TraceEvent::SessionShed {
                client,
                active,
                queue_bytes,
            } => {
                push("client", Json::from(*client));
                push("active", Json::from(*active));
                push("queue_bytes", Json::from(*queue_bytes));
            }
        }
        Json::Obj(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndjson_encoding_is_flat_and_stamped() {
        let e = TraceEvent::DeadlineMissed {
            chunk: 17,
            overrun_s: 1.25,
        };
        let j = e.to_json(SimTime::from_millis(68_000));
        assert_eq!(
            j.get("kind").and_then(|k| k.as_str()),
            Some("deadline_missed")
        );
        let line = j.to_string();
        assert!(line.starts_with("{\"t_s\":68"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn every_variant_names_its_kind() {
        let samples = [
            TraceEvent::SubflowFailed { path: 0 },
            TraceEvent::DssSignal { mask: 3 },
            TraceEvent::DeadlineBypassed { chunk: 0 },
            TraceEvent::BufferTransition {
                state: "stalled",
                buffer_s: 0.0,
            },
            TraceEvent::OriginRouted {
                chunk: 2,
                origin: 1,
                reason: "resume",
            },
            TraceEvent::OriginHealth {
                origin: 0,
                state: "open",
                failures: 2,
            },
            TraceEvent::Hedge {
                chunk: 3,
                origin: 0,
                hedge_origin: 1,
                winner: Some("hedge"),
                wasted: 4_096,
            },
            TraceEvent::HedgeLoserSettled {
                chunk: 3,
                wasted: 2_048,
            },
            TraceEvent::Cache {
                chunk: 4,
                level: 1,
                outcome: "hit",
                bytes: 800_000,
            },
            TraceEvent::SessionDeparted {
                watched_s: 48.0,
                chunks: 12,
            },
            TraceEvent::SessionShed {
                client: 7,
                active: 9,
                queue_bytes: 131_072,
            },
        ];
        for e in &samples {
            let j = e.to_json(SimTime::ZERO);
            assert_eq!(j.get("kind").and_then(|k| k.as_str()), Some(e.kind()));
        }
    }
}
