//! Observability for the MP-DASH reproduction: a structured event trace
//! stamped with **virtual** time, a metrics registry, and the sinks that
//! collect both — without ever feeding back into simulation state.
//!
//! The paper's own methodology (§6) diagnoses scheduler behaviour from
//! exactly two inputs: the packet trace and the player event log. This
//! crate generalizes that into a first-class instrument:
//!
//! * [`TraceEvent`] — the cross-layer event taxonomy (scheduler toggles
//!   with their feasibility inputs, subflow transitions, DSS signals,
//!   ABR choices, deadline grants/hits/misses, fault windows, player
//!   buffer transitions).
//! * [`TraceSink`] / [`Tracer`] — the zero-overhead-when-disabled
//!   emission path. A disabled [`Tracer`] is a single `Option` branch;
//!   event construction is deferred behind a closure so the hot path
//!   pays nothing when tracing is off.
//! * [`RingSink`] / [`NdjsonSink`] — in-memory and NDJSON-file sinks.
//! * [`MetricsRegistry`] / [`MetricsSnapshot`] — named counters, gauges
//!   and log-scale histograms with deterministic (insertion) ordering,
//!   snapshotted into session reports and JSON artifacts.
//! * [`EpochSeries`] / [`TelemetrySpec`] — fixed virtual-time epoch
//!   rollups whose `merge` is associative and commutative to the bit,
//!   so shard-local series combine identically at any `MPDASH_WORKERS`.
//! * [`Watchdog`] / [`InvariantViolation`] — the always-cheap runtime
//!   invariant checker the fleet loop arms on every iteration (byte
//!   conservation, monotone virtual time, breaker sanity, one hedge
//!   winner per race), turning silent corruption into typed errors.
//!
//! Every timestamp is [`mpdash_sim::SimTime`] — virtual, not wall-clock
//! — so enabling any sink changes **zero bytes** of any artifact: the
//! simulation's decisions never depend on what observers saw.

pub mod event;
pub mod metrics;
pub mod sink;
pub mod timeseries;
pub mod watchdog;

pub use event::TraceEvent;
pub use metrics::{HistogramSnapshot, LogHistogram, MetricsRegistry, MetricsSnapshot};
pub use sink::{NdjsonSink, NullSink, RingSink, TraceSink, Tracer};
pub use timeseries::{telemetry_from_env, EpochCell, EpochSeries, TelemetrySpec};
pub use watchdog::{ConservationCounters, InvariantViolation, Watchdog};
