//! A small metrics registry: named counters, gauges, and log-scale
//! histograms with **deterministic** ordering and serialization.
//!
//! Determinism is the design constraint everything here serves: metric
//! names keep insertion order (no `HashMap` iteration order leaking
//! into artifacts), histogram buckets are powers of two (no float
//! boundary computation), and the JSON encoding reuses the byte-stable
//! [`Json`] writer. A [`MetricsSnapshot`] can therefore live inside a
//! session report and the experiment artifacts without breaking the
//! batch runner's byte-identity checks.

use mpdash_results::Json;

/// A power-of-two histogram: bucket `i` counts observations in
/// `[2^i, 2^(i+1))`, with 0 landing in bucket 0.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl LogHistogram {
    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        let bucket = (64 - value.max(1).leading_zeros() - 1) as usize;
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Fold `other` into `self`. Bucket counts and totals are `u64`
    /// sums, so merging is associative and commutative down to the bit
    /// — the property the epoch-rollup shard merge relies on. (`sum`
    /// saturates; at the saturation boundary order could matter, but a
    /// simulation would overflow virtual time long before 2^64 bytes.)
    pub fn merge(&mut self, other: &LogHistogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Freeze into `(bucket lower bound, count)` pairs with empty
    /// buckets elided.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (1u64 << i, n))
                .collect(),
        }
    }
}

/// Mutable registry filled during a run. Lookups are linear over a
/// small `Vec` — sessions register a dozen names, not thousands — which
/// buys insertion-ordered, hash-free determinism.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, LogHistogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the named counter, creating it at zero first.
    pub fn add(&mut self, name: &str, n: u64) {
        match self.counters.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v += n,
            None => self.counters.push((name.to_string(), n)),
        }
    }

    /// Increment the named counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Set the named gauge to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        match self.gauges.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v = value,
            None => self.gauges.push((name.to_string(), value)),
        }
    }

    /// Record `value` into the named log-scale histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        match self.histograms.iter_mut().find(|(k, _)| k == name) {
            Some((_, h)) => h.observe(value),
            None => {
                let mut h = LogHistogram::default();
                h.observe(value);
                self.histograms.push((name.to_string(), h));
            }
        }
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Freeze into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Frozen histogram: `(bucket lower bound, count)` pairs, empty buckets
/// elided, plus totals for mean computation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// `(2^i, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

/// An immutable, ordered snapshot of a [`MetricsRegistry`], suitable
/// for embedding in reports and byte-stable artifacts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Named counters in registration order.
    pub counters: Vec<(String, u64)>,
    /// Named gauges in registration order.
    pub gauges: Vec<(String, f64)>,
    /// Named histograms in registration order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// True when nothing was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Counter value by name (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Deterministic JSON encoding:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name:
    /// {"count", "sum", "buckets": [[lo, n], ...]}}}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Float(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| {
                            (
                                k.clone(),
                                Json::obj([
                                    ("count", Json::from(h.count)),
                                    ("sum", Json::from(h.sum)),
                                    (
                                        "buckets",
                                        Json::arr(h.buckets.iter().map(|&(lo, n)| {
                                            Json::arr([Json::from(lo), Json::from(n)])
                                        })),
                                    ),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_keep_insertion_order() {
        let mut m = MetricsRegistry::new();
        m.inc("zebra");
        m.inc("apple");
        m.add("zebra", 2);
        m.set_gauge("peak", 7.0);
        let s = m.snapshot();
        assert_eq!(s.counters, vec![("zebra".into(), 3), ("apple".into(), 1)]);
        assert_eq!(s.gauge("peak"), Some(7.0));
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn log_histogram_buckets_are_powers_of_two() {
        let mut m = MetricsRegistry::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            m.observe("chunk_ms", v);
        }
        let s = m.snapshot();
        let h = &s.histograms[0].1;
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1010);
        // 0 and 1 → bucket 1<<0; 2,3 → 1<<1; 4 → 1<<2; 1000 → 1<<9.
        assert_eq!(h.buckets, vec![(1, 2), (2, 2), (4, 1), (512, 1)]);
    }

    #[test]
    fn snapshot_json_is_byte_stable() {
        let mut m = MetricsRegistry::new();
        m.inc("chunks");
        m.observe("bytes", 300_000);
        m.set_gauge("peak_queue", 41.0);
        let a = m.snapshot().to_json().to_pretty();
        let b = m.snapshot().to_json().to_pretty();
        assert_eq!(a, b);
        assert!(a.contains("\"chunks\""));
    }
}
