//! Trace sinks and the [`Tracer`] handle that emission sites hold.
//!
//! The sink contract is strictly **observe-only**: a sink sees each
//! event exactly once, in emission order, stamped with virtual time,
//! and has no channel back into the simulation. Sinks must be
//! `Send + Sync` because session configs (which embed a [`Tracer`])
//! cross threads in the parallel batch runner.

use crate::event::TraceEvent;
use mpdash_sim::SimTime;
use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

/// Receives trace events. Implementations must not panic on `record`:
/// a broken observer must never take down a simulation.
pub trait TraceSink: Send + Sync {
    /// One event, stamped with the virtual time it was emitted at.
    fn record(&self, t: SimTime, event: &TraceEvent);
    /// Flush any buffered output (no-op by default).
    fn flush(&self) {}
}

/// The no-op sink. [`Tracer::disabled`] never calls into a sink at all,
/// so this type exists mainly to make the degenerate case nameable in
/// tests and docs; `record` compiles to nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn record(&self, _t: SimTime, _event: &TraceEvent) {}
}

/// A bounded in-memory sink: keeps the most recent `capacity` events.
/// This is what `mpdash explain` uses to replay a scenario and query
/// the decision record afterwards.
pub struct RingSink {
    capacity: usize,
    events: Mutex<VecDeque<(SimTime, TraceEvent)>>,
}

impl RingSink {
    /// A ring holding at most `capacity` events (oldest dropped first).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<(SimTime, TraceEvent)> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for RingSink {
    fn record(&self, t: SimTime, event: &TraceEvent) {
        let mut q = self.events.lock().unwrap();
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back((t, event.clone()));
    }
}

impl fmt::Debug for RingSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RingSink(cap {}, len {})", self.capacity, self.len())
    }
}

/// Appends one JSON object per event to a file — the NDJSON trace
/// format. Lines are appended atomically under a mutex, so concurrent
/// sessions sharing one sink interleave whole lines, never bytes.
///
/// Writes are batched in an internal line buffer that reaches the file
/// only when it exceeds [`NdjsonSink::FLUSH_THRESHOLD`], on an explicit
/// [`flush`](TraceSink::flush), or on drop — the drop guard runs even
/// when the thread is unwinding from a panic, so a crashed run leaves a
/// trace truncated at a line boundary, not mid-buffer.
pub struct NdjsonSink {
    out: Mutex<LineBuffer>,
}

struct LineBuffer {
    file: File,
    buf: String,
}

impl LineBuffer {
    fn flush(&mut self) {
        if !self.buf.is_empty() {
            // An observer must never panic the simulation; a full disk
            // just stops the trace.
            let _ = self.file.write_all(self.buf.as_bytes());
            self.buf.clear();
        }
    }
}

impl NdjsonSink {
    /// Buffered bytes beyond which `record` writes through to the file.
    pub const FLUSH_THRESHOLD: usize = 64 * 1024;

    /// Create (truncate) the trace file at `path`, creating parent
    /// directories as needed.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(NdjsonSink {
            out: Mutex::new(LineBuffer {
                file: File::create(path)?,
                buf: String::new(),
            }),
        })
    }
}

impl TraceSink for NdjsonSink {
    fn record(&self, t: SimTime, event: &TraceEvent) {
        let line = event.to_json(t).to_string();
        let mut out = self.out.lock().unwrap();
        out.buf.push_str(&line);
        out.buf.push('\n');
        if out.buf.len() >= Self::FLUSH_THRESHOLD {
            out.flush();
        }
    }

    fn flush(&self) {
        self.out.lock().unwrap().flush();
    }
}

impl Drop for NdjsonSink {
    fn drop(&mut self) {
        // Recover the buffer even if a panicking recorder poisoned the
        // lock: whole lines are still whole lines.
        match self.out.get_mut() {
            Ok(out) => out.flush(),
            Err(poisoned) => poisoned.into_inner().flush(),
        }
    }
}

impl fmt::Debug for NdjsonSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NdjsonSink")
    }
}

/// The cheap-to-clone handle emission sites hold. Disabled tracers
/// carry no sink: [`Tracer::emit_with`] is then a single branch and the
/// event-construction closure is never run.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<dyn TraceSink>>);

impl Tracer {
    /// A tracer that drops everything (the default in every config).
    pub const fn disabled() -> Self {
        Tracer(None)
    }

    /// A tracer feeding the given sink.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Tracer(Some(sink))
    }

    /// Whether a sink is attached. Emission sites may use this to skip
    /// expensive *input gathering* (not just event construction).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Emit an event, constructing it only if a sink is attached.
    #[inline]
    pub fn emit_with(&self, t: SimTime, build: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.0 {
            sink.record(t, &build());
        }
    }

    /// Flush the attached sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.0 {
            sink.flush();
        }
    }

    /// This tracer if enabled, otherwise the process-wide
    /// environment-configured tracer (see [`Tracer::from_env`]).
    pub fn or_env(&self) -> Tracer {
        if self.enabled() {
            self.clone()
        } else {
            Tracer::from_env()
        }
    }

    /// The tracer selected by `MPDASH_TRACE`, resolved once per
    /// process:
    ///
    /// * unset / `""` / `"0"` / `"off"` — disabled;
    /// * `"ndjson"` — an [`NdjsonSink`] writing `trace.ndjson` under
    ///   `MPDASH_TRACE_DIR` (default `traces/`), shared by every
    ///   session in the process;
    /// * `"ring"` — a process-wide [`RingSink`] (useful only to prove
    ///   the zero-perturbation property from the outside).
    ///
    /// An unrecognized value or an unwritable trace file degrades to
    /// disabled with a warning on stderr — tracing must never turn a
    /// working run into a failing one.
    pub fn from_env() -> Tracer {
        static ENV_TRACER: OnceLock<Tracer> = OnceLock::new();
        ENV_TRACER
            .get_or_init(|| {
                let mode = std::env::var("MPDASH_TRACE").unwrap_or_default();
                match mode.as_str() {
                    "" | "0" | "off" => Tracer::disabled(),
                    "ring" => Tracer::new(Arc::new(RingSink::new(1 << 16))),
                    "ndjson" => {
                        let dir = std::env::var("MPDASH_TRACE_DIR")
                            .unwrap_or_else(|_| "traces".to_string());
                        let path = Path::new(&dir).join("trace.ndjson");
                        match NdjsonSink::create(&path) {
                            Ok(sink) => Tracer::new(Arc::new(sink)),
                            Err(e) => {
                                eprintln!(
                                    "warning: MPDASH_TRACE=ndjson but cannot open {}: {e}; \
                                     tracing disabled",
                                    path.display()
                                );
                                Tracer::disabled()
                            }
                        }
                    }
                    other => {
                        eprintln!(
                            "warning: unknown MPDASH_TRACE value '{other}' \
                             (expected off|ring|ndjson); tracing disabled"
                        );
                        Tracer::disabled()
                    }
                }
            })
            .clone()
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(_) => write!(f, "Tracer(on)"),
            None => write!(f, "Tracer(off)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(chunk: usize) -> TraceEvent {
        TraceEvent::DeadlineBypassed { chunk }
    }

    #[test]
    fn disabled_tracer_never_builds_the_event() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.emit_with(SimTime::ZERO, || panic!("built an event while disabled"));
    }

    #[test]
    fn ring_keeps_most_recent_events() {
        let ring = Arc::new(RingSink::new(3));
        let t = Tracer::new(ring.clone());
        for i in 0..5 {
            t.emit_with(SimTime::from_secs(i as u64), || ev(i));
        }
        let got = ring.events();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].1, ev(2));
        assert_eq!(got[2].1, ev(4));
        assert_eq!(got[2].0, SimTime::from_secs(4));
    }

    #[test]
    fn ndjson_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join(format!("mpdash-obs-test-{}", std::process::id()));
        let path = dir.join("trace.ndjson");
        let sink = NdjsonSink::create(&path).unwrap();
        let t = Tracer::new(Arc::new(sink));
        t.emit_with(SimTime::from_secs(1), || ev(0));
        t.emit_with(SimTime::from_secs(2), || TraceEvent::SubflowFailed {
            path: 1,
        });
        t.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"deadline_bypassed\""));
        assert!(lines[1].contains("\"subflow_failed\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ndjson_sink_flushes_buffered_lines_on_drop() {
        let dir = std::env::temp_dir().join(format!("mpdash-obs-drop-{}", std::process::id()));
        let path = dir.join("trace.ndjson");
        {
            let sink = NdjsonSink::create(&path).unwrap();
            sink.record(SimTime::from_secs(1), &ev(7));
            // Below the flush threshold: nothing on disk yet.
            assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        } // drop guard flushes
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"deadline_bypassed\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
