//! Deterministic epoch time-series rollups: the fleet-scale telemetry
//! layer.
//!
//! A raw trace (PR 3) answers "what happened to this one session"; the
//! ROADMAP's mega-fleet experiments need "what was the fleet doing at
//! minute three". This module rolls per-session signals up into fixed
//! **virtual-time epochs**: epoch `i` of an [`EpochSeries`] covers
//! `[i·E, (i+1)·E)` where `E` is the configured epoch width. Each epoch
//! holds named counters and log₂ histograms — deliberately *only*
//! `u64`-valued aggregates, because the whole design hinges on
//! [`EpochSeries::merge`] being associative **and** commutative down to
//! the bit: shard-local series produced on any `MPDASH_WORKERS`
//! interleaving must combine into byte-identical fleet series. Integer
//! addition gives that for free; float accumulation (gauges, means)
//! would not, so float-valued signals are observed into histograms
//! (count + sum recover the mean deterministically).
//!
//! Names inside an epoch are kept **sorted**, not insertion-ordered
//! like [`MetricsRegistry`](crate::MetricsRegistry): two sessions that
//! touch the same signals in different orders must still serialize
//! identically after a merge, whichever series was the merge target.
//!
//! Everything is timestamped with [`SimTime`] — virtual time — so the
//! rollup is observe-only and byte-invariant under wall-clock jitter,
//! worker count, and whether any other observer is attached.

use crate::metrics::LogHistogram;
use mpdash_results::Json;
use mpdash_sim::{SimDuration, SimTime};
use std::sync::OnceLock;

/// Telemetry configuration: the epoch width of every series in a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetrySpec {
    /// Epoch width (must be non-zero).
    pub epoch: SimDuration,
}

impl TelemetrySpec {
    /// A spec with the given epoch width.
    ///
    /// # Panics
    /// If the epoch is zero — an epoch index would divide by zero.
    pub fn new(epoch: SimDuration) -> Self {
        assert!(!epoch.is_zero(), "telemetry epoch must be > 0");
        TelemetrySpec { epoch }
    }

    /// A spec with an epoch of `secs` seconds.
    pub fn seconds(secs: f64) -> Self {
        TelemetrySpec::new(SimDuration::from_secs_f64(secs))
    }
}

impl Default for TelemetrySpec {
    /// One-second epochs — fine-grained enough for per-chunk dynamics,
    /// coarse enough that a long fleet run stays a few hundred cells.
    fn default() -> Self {
        TelemetrySpec {
            epoch: SimDuration::from_secs(1),
        }
    }
}

/// The telemetry spec selected by `MPDASH_TELEMETRY`, resolved once per
/// process (the same pattern as [`Tracer::from_env`](crate::Tracer::from_env)):
///
/// * unset / `""` / `"0"` / `"off"` — `None` (telemetry disabled);
/// * a positive number — epoch width in (possibly fractional) seconds;
/// * `"1"` is therefore the natural "just turn it on" value: one-second
///   epochs.
///
/// An unparseable value degrades to disabled with a warning on stderr —
/// telemetry must never turn a working run into a failing one. Sessions
/// whose config carries no explicit [`TelemetrySpec`] fall back to this,
/// which is how CI proves artifacts are byte-identical with telemetry
/// on vs off without touching any experiment binary.
pub fn telemetry_from_env() -> Option<TelemetrySpec> {
    static ENV_TELEMETRY: OnceLock<Option<TelemetrySpec>> = OnceLock::new();
    *ENV_TELEMETRY.get_or_init(|| {
        let raw = std::env::var("MPDASH_TELEMETRY").unwrap_or_default();
        match raw.trim() {
            "" | "0" | "off" => None,
            v => match v.parse::<f64>() {
                Ok(secs) if secs > 0.0 && secs.is_finite() => Some(TelemetrySpec::seconds(secs)),
                _ => {
                    eprintln!(
                        "warning: unusable MPDASH_TELEMETRY value '{v}' \
                         (expected off|0|<epoch seconds>); telemetry disabled"
                    );
                    None
                }
            },
        }
    })
}

/// One epoch's rollup: sorted named counters and log₂ histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EpochCell {
    /// `(name, total)` sorted by name.
    counters: Vec<(String, u64)>,
    /// `(name, histogram)` sorted by name.
    histograms: Vec<(String, LogHistogram)>,
}

impl EpochCell {
    fn add(&mut self, name: &str, n: u64) {
        match self
            .counters
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
        {
            Ok(i) => self.counters[i].1 += n,
            Err(i) => self.counters.insert(i, (name.to_string(), n)),
        }
    }

    fn observe(&mut self, name: &str, value: u64) {
        match self
            .histograms
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
        {
            Ok(i) => self.histograms[i].1.observe(value),
            Err(i) => {
                let mut h = LogHistogram::default();
                h.observe(value);
                self.histograms.insert(i, (name.to_string(), h));
            }
        }
    }

    /// Counter value by name (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    /// Histogram by name, if any value was observed this epoch.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .map(|i| &self.histograms[i].1)
            .ok()
    }

    /// True when nothing was recorded in this epoch.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    fn merge(&mut self, other: &EpochCell) {
        for (name, n) in &other.counters {
            self.add(name, *n);
        }
        for (name, h) in &other.histograms {
            match self
                .histograms
                .binary_search_by(|(k, _)| k.as_str().cmp(name.as_str()))
            {
                Ok(i) => self.histograms[i].1.merge(h),
                Err(i) => self.histograms.insert(i, (name.clone(), h.clone())),
            }
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| {
                            let s = h.snapshot();
                            (
                                k.clone(),
                                Json::obj([
                                    ("count", Json::from(s.count)),
                                    ("sum", Json::from(s.sum)),
                                    (
                                        "buckets",
                                        Json::arr(s.buckets.iter().map(|&(lo, n)| {
                                            Json::arr([Json::from(lo), Json::from(n)])
                                        })),
                                    ),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A dense series of [`EpochCell`]s over virtual time, from epoch 0 up
/// to the last epoch that recorded anything. See the module docs for
/// the merge-determinism contract.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochSeries {
    epoch: SimDuration,
    cells: Vec<EpochCell>,
}

impl EpochSeries {
    /// An empty series with the spec's epoch width.
    pub fn new(spec: TelemetrySpec) -> Self {
        assert!(!spec.epoch.is_zero(), "telemetry epoch must be > 0");
        EpochSeries {
            epoch: spec.epoch,
            cells: Vec::new(),
        }
    }

    /// The epoch width.
    pub fn epoch_len(&self) -> SimDuration {
        self.epoch
    }

    /// The epoch index covering virtual time `t`.
    pub fn index_of(&self, t: SimTime) -> usize {
        (t.as_nanos() / self.epoch.as_nanos()) as usize
    }

    fn cell_at(&mut self, t: SimTime) -> &mut EpochCell {
        let i = self.index_of(t);
        if self.cells.len() <= i {
            self.cells.resize(i + 1, EpochCell::default());
        }
        &mut self.cells[i]
    }

    /// Add `n` to the named counter in `t`'s epoch.
    pub fn add(&mut self, t: SimTime, name: &str, n: u64) {
        self.cell_at(t).add(name, n);
    }

    /// Increment the named counter in `t`'s epoch.
    pub fn inc(&mut self, t: SimTime, name: &str) {
        self.add(t, name, 1);
    }

    /// Record `value` into the named log₂ histogram in `t`'s epoch.
    pub fn observe(&mut self, t: SimTime, name: &str, value: u64) {
        self.cell_at(t).observe(name, value);
    }

    /// Number of epochs (index of the last touched epoch + 1).
    pub fn n_epochs(&self) -> usize {
        self.cells.len()
    }

    /// Cell by epoch index.
    pub fn cell(&self, i: usize) -> Option<&EpochCell> {
        self.cells.get(i)
    }

    /// Iterate `(epoch index, cell)`.
    pub fn cells(&self) -> impl Iterator<Item = (usize, &EpochCell)> {
        self.cells.iter().enumerate()
    }

    /// The named counter's value in every epoch, dense from epoch 0.
    pub fn counter_series(&self, name: &str) -> Vec<u64> {
        self.cells.iter().map(|c| c.counter(name)).collect()
    }

    /// The named counter summed over all epochs.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.cells.iter().map(|c| c.counter(name)).sum()
    }

    /// True when no epoch recorded anything.
    pub fn is_empty(&self) -> bool {
        self.cells.iter().all(|c| c.is_empty())
    }

    /// Merge `other` into `self`, epoch by epoch. Associative and
    /// commutative (counters and histogram buckets are `u64` sums), so
    /// shard-local series combine bit-identically in any order.
    ///
    /// # Panics
    /// If the epoch widths differ — merging misaligned series would
    /// silently smear signals across time.
    pub fn merge(&mut self, other: &EpochSeries) {
        assert_eq!(
            self.epoch, other.epoch,
            "cannot merge series with different epoch widths"
        );
        if self.cells.len() < other.cells.len() {
            self.cells.resize(other.cells.len(), EpochCell::default());
        }
        for (mine, theirs) in self.cells.iter_mut().zip(&other.cells) {
            mine.merge(theirs);
        }
    }

    /// Deterministic JSON encoding: the epoch width plus one object per
    /// epoch, dense from epoch 0, names sorted. Byte-stable under the
    /// merge contract: however a series was sharded and recombined, the
    /// same underlying events produce the same bytes.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("epoch_s", Json::Float(self.epoch.as_secs_f64())),
            ("epochs", Json::arr(self.cells.iter().map(|c| c.to_json()))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn spec2() -> TelemetrySpec {
        TelemetrySpec::new(SimDuration::from_secs(2))
    }

    #[test]
    fn events_land_in_their_epoch() {
        let mut s = EpochSeries::new(spec2());
        s.inc(t(0), "chunks");
        s.inc(t(1), "chunks"); // still epoch 0: [0, 2)
        s.inc(t(2), "chunks"); // epoch 1
        s.add(t(5), "chunks", 3); // epoch 2
        assert_eq!(s.counter_series("chunks"), vec![2, 1, 3]);
        assert_eq!(s.counter_total("chunks"), 6);
        assert_eq!(s.n_epochs(), 3);
    }

    #[test]
    fn untouched_epochs_are_dense_zeros() {
        let mut s = EpochSeries::new(spec2());
        s.inc(t(9), "x"); // epoch 4; 0..=3 exist but are empty
        assert_eq!(s.counter_series("x"), vec![0, 0, 0, 0, 1]);
        assert!(s.cell(0).unwrap().is_empty());
        assert!(!s.is_empty());
    }

    #[test]
    fn names_serialize_sorted_regardless_of_insertion_order() {
        let mut a = EpochSeries::new(spec2());
        a.inc(t(0), "zebra");
        a.inc(t(0), "apple");
        let mut b = EpochSeries::new(spec2());
        b.inc(t(0), "apple");
        b.inc(t(0), "zebra");
        assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
    }

    #[test]
    fn merge_is_commutative_bitwise() {
        let mut a = EpochSeries::new(spec2());
        a.inc(t(0), "chunks");
        a.observe(t(3), "buffer_ms", 900);
        let mut b = EpochSeries::new(spec2());
        b.add(t(4), "chunks", 2);
        b.observe(t(3), "buffer_ms", 40_000);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.to_json().to_pretty(), ba.to_json().to_pretty());
        assert_eq!(ab.counter_series("chunks"), vec![1, 0, 2]);
        assert_eq!(
            ab.cell(1).unwrap().histogram("buffer_ms").unwrap().count(),
            2
        );
    }

    #[test]
    #[should_panic(expected = "different epoch widths")]
    fn merging_misaligned_series_panics() {
        let mut a = EpochSeries::new(spec2());
        let b = EpochSeries::new(TelemetrySpec::default());
        a.merge(&b);
    }

    #[test]
    fn env_unset_means_disabled() {
        // The test harness never sets MPDASH_TELEMETRY.
        assert_eq!(telemetry_from_env(), None);
    }
}
