//! Runtime invariant watchdog: always-cheap checks the fleet loop runs
//! on every iteration, turning latent simulator corruption into typed,
//! deterministic errors at the instant it appears.
//!
//! The co-simulation's correctness rests on a handful of structural
//! invariants that ordinary assertions only examine at end of run (or
//! only in debug builds): every byte offered to a shared bottleneck is
//! delivered, dropped, or still queued; the global-minimum event scan
//! never moves virtual time backwards; a circuit breaker's probe flag
//! only exists in the Half-Open state; and every hedge race resolves to
//! exactly one winner. A long churning fleet run that silently violated
//! any of these would still *finish* — with subtly wrong artifacts.
//! [`Watchdog`] makes the violation loud instead: each check is a few
//! integer comparisons (no allocation, no locking beyond what the
//! caller already holds), so it can run inside every loop iteration,
//! and a failure surfaces as an [`InvariantViolation`] whose contents
//! are a pure function of the simulation state — bit-identical at any
//! `MPDASH_WORKERS`.
//!
//! The watchdog is strictly observe-only: it never mutates simulation
//! state, so arming it changes zero bytes of any artifact.

use mpdash_sim::SimTime;
use std::fmt;

/// Cheap whole-bottleneck counter snapshot for conservation checks.
/// Unlike the full per-flow stats, building one is a handful of copies
/// — no allocation — so the fleet loop can probe it every iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConservationCounters {
    /// Bytes offered across all flows.
    pub offered_bytes: u64,
    /// Bytes that departed the server.
    pub delivered_bytes: u64,
    /// Bytes drop-tailed on arrival.
    pub dropped_bytes: u64,
    /// Bytes still in the system (queued + in service).
    pub queued_bytes: u64,
    /// Packets offered.
    pub offered_packets: u64,
    /// Packets departed.
    pub delivered_packets: u64,
    /// Packets drop-tailed.
    pub dropped_packets: u64,
    /// Packets still in the system.
    pub queued_packets: u64,
}

impl ConservationCounters {
    /// Byte and packet conservation: everything offered is accounted
    /// for as delivered, dropped, or still queued.
    pub fn conserved(&self) -> bool {
        self.offered_bytes == self.delivered_bytes + self.dropped_bytes + self.queued_bytes
            && self.offered_packets
                == self.delivered_packets + self.dropped_packets + self.queued_packets
    }
}

/// One violated runtime invariant. Deterministic: the payload is a pure
/// function of simulation state at the failing check.
#[derive(Clone, Debug, PartialEq)]
pub enum InvariantViolation {
    /// A shared bottleneck's counters no longer balance.
    ByteConservation {
        /// Topology index of the bottleneck.
        bottleneck: usize,
        /// The unbalanced counters.
        counters: ConservationCounters,
    },
    /// The event loop picked an event earlier than one it already
    /// processed — virtual time went backwards.
    TimeRegression {
        /// The previously processed event time, seconds.
        prev_s: f64,
        /// The regressing event time, seconds.
        next_s: f64,
    },
    /// A session resolved more hedge races than it launched.
    HedgeAccounting {
        /// Client index inside the fleet.
        client: usize,
        /// Hedge races launched.
        hedges: u64,
        /// Races the primary won.
        wins_primary: u64,
        /// Races the hedge won.
        wins_hedge: u64,
    },
    /// An origin pool's breaker state machine is inconsistent.
    BreakerState {
        /// Client index inside the fleet.
        client: usize,
        /// What was inconsistent.
        detail: &'static str,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::ByteConservation {
                bottleneck,
                counters,
            } => write!(
                f,
                "bottleneck {bottleneck} lost bytes: offered {} != delivered {} + dropped {} + queued {}",
                counters.offered_bytes,
                counters.delivered_bytes,
                counters.dropped_bytes,
                counters.queued_bytes
            ),
            InvariantViolation::TimeRegression { prev_s, next_s } => write!(
                f,
                "virtual time regressed: {next_s:.6}s after {prev_s:.6}s"
            ),
            InvariantViolation::HedgeAccounting {
                client,
                hedges,
                wins_primary,
                wins_hedge,
            } => write!(
                f,
                "client {client} resolved more hedge races than it launched: \
                 {hedges} hedges vs {wins_primary} primary + {wins_hedge} hedge wins"
            ),
            InvariantViolation::BreakerState { client, detail } => {
                write!(f, "client {client} breaker state insane: {detail}")
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// The runtime checker. One instance per fleet run; every check either
/// passes (and bumps the check counter) or returns the typed violation.
#[derive(Clone, Debug, Default)]
pub struct Watchdog {
    last_time: Option<SimTime>,
    checks: u64,
}

impl Watchdog {
    /// A fresh watchdog with no time watermark.
    pub fn new() -> Self {
        Watchdog::default()
    }

    /// Checks performed so far (all of them passing — a failing check
    /// aborts the run through its `Err`).
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// The event loop is about to process an event at `now`: virtual
    /// time must be non-decreasing.
    pub fn check_time(&mut self, now: SimTime) -> Result<(), InvariantViolation> {
        self.checks += 1;
        if let Some(prev) = self.last_time {
            if now < prev {
                return Err(InvariantViolation::TimeRegression {
                    prev_s: prev.as_secs_f64(),
                    next_s: now.as_secs_f64(),
                });
            }
        }
        self.last_time = Some(now);
        Ok(())
    }

    /// Byte/packet conservation of bottleneck `bottleneck`.
    pub fn check_conservation(
        &mut self,
        bottleneck: usize,
        counters: ConservationCounters,
    ) -> Result<(), InvariantViolation> {
        self.checks += 1;
        if counters.conserved() {
            Ok(())
        } else {
            Err(InvariantViolation::ByteConservation {
                bottleneck,
                counters,
            })
        }
    }

    /// Hedge accounting for one client: mid-run, resolved races can
    /// never exceed launched races (they match exactly once the session
    /// finishes and every race has resolved).
    pub fn check_hedges(
        &mut self,
        client: usize,
        hedges: u64,
        wins_primary: u64,
        wins_hedge: u64,
    ) -> Result<(), InvariantViolation> {
        self.checks += 1;
        if wins_primary + wins_hedge <= hedges {
            Ok(())
        } else {
            Err(InvariantViolation::HedgeAccounting {
                client,
                hedges,
                wins_primary,
                wins_hedge,
            })
        }
    }

    /// Breaker-state sanity for one client, as probed by its origin
    /// pool (`Ok(())` from sessions without a pool).
    pub fn check_breakers(
        &mut self,
        client: usize,
        probe: Result<(), &'static str>,
    ) -> Result<(), InvariantViolation> {
        self.checks += 1;
        probe.map_err(|detail| InvariantViolation::BreakerState { client, detail })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced() -> ConservationCounters {
        ConservationCounters {
            offered_bytes: 100,
            delivered_bytes: 60,
            dropped_bytes: 10,
            queued_bytes: 30,
            offered_packets: 10,
            delivered_packets: 6,
            dropped_packets: 1,
            queued_packets: 3,
        }
    }

    #[test]
    fn monotone_time_passes_and_regression_is_caught() {
        let mut w = Watchdog::new();
        assert!(w.check_time(SimTime::from_millis(5)).is_ok());
        assert!(
            w.check_time(SimTime::from_millis(5)).is_ok(),
            "ties are fine"
        );
        assert!(w.check_time(SimTime::from_millis(9)).is_ok());
        let err = w.check_time(SimTime::from_millis(8)).unwrap_err();
        assert!(matches!(err, InvariantViolation::TimeRegression { .. }));
        assert_eq!(w.checks(), 4);
    }

    #[test]
    fn conservation_imbalance_is_typed_with_its_counters() {
        let mut w = Watchdog::new();
        assert!(w.check_conservation(0, balanced()).is_ok());
        let mut bad = balanced();
        bad.delivered_bytes += 1;
        match w.check_conservation(1, bad) {
            Err(InvariantViolation::ByteConservation {
                bottleneck,
                counters,
            }) => {
                assert_eq!(bottleneck, 1);
                assert_eq!(counters, bad);
            }
            other => panic!("expected a conservation violation, got {other:?}"),
        }
    }

    #[test]
    fn hedge_wins_may_trail_but_never_exceed_launches() {
        let mut w = Watchdog::new();
        assert!(w.check_hedges(0, 3, 1, 1).is_ok(), "one race still live");
        assert!(w.check_hedges(0, 3, 2, 1).is_ok(), "all resolved");
        assert!(w.check_hedges(0, 3, 2, 2).is_err(), "phantom winner");
    }

    #[test]
    fn breaker_probe_failures_carry_the_client_and_detail() {
        let mut w = Watchdog::new();
        assert!(w.check_breakers(4, Ok(())).is_ok());
        let err = w
            .check_breakers(4, Err("probe outside half-open"))
            .unwrap_err();
        assert_eq!(
            err,
            InvariantViolation::BreakerState {
                client: 4,
                detail: "probe outside half-open"
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("client 4") && msg.contains("probe outside half-open"));
    }

    #[test]
    fn violations_render_readable_messages() {
        let v = InvariantViolation::ByteConservation {
            bottleneck: 0,
            counters: ConservationCounters {
                offered_bytes: 10,
                ..ConservationCounters::default()
            },
        };
        assert!(v.to_string().contains("bottleneck 0 lost bytes"));
        let t = InvariantViolation::TimeRegression {
            prev_s: 2.0,
            next_s: 1.0,
        };
        assert!(t.to_string().contains("regressed"));
    }
}
