//! Property tests on the telemetry merge algebra: log₂ histograms and
//! epoch rollups must form a commutative monoid **down to the bit**, or
//! shard-local series produced at different `MPDASH_WORKERS` settings
//! would stop combining into byte-identical fleet series.
//!
//! The invariants:
//!
//! * **associativity / commutativity** — `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`
//!   and `a ⊕ b == b ⊕ a`, for both [`LogHistogram`] and
//!   [`EpochSeries`], checked structurally *and* on serialized bytes;
//! * **shard identity** — replaying one event stream into N shard-local
//!   series and merging them (in any shard order) serializes to exactly
//!   the bytes of the single-shard replay.

use mpdash_obs::{EpochSeries, LogHistogram, TelemetrySpec};
use mpdash_sim::{Prng, SimDuration, SimTime};
use proptest::prelude::*;

/// A replayable telemetry event: counter add or histogram observation.
#[derive(Clone, Debug)]
struct Event {
    at: SimTime,
    name: &'static str,
    value: u64,
    histogram: bool,
}

const NAMES: [&str; 8] = [
    "chunks",
    "cell_bytes",
    "buffer_ms",
    "deadline_misses",
    "queue_depth_bytes",
    // AQM epoch cells: per-departure sojourn, PIE's drop probability,
    // and the dequeue-drop counter must shard-merge like everything
    // else or `exp_aqm` artifacts would drift across MPDASH_WORKERS.
    "queue_wait_ms",
    "aqm_drop_prob_ppm",
    "aqm_dropped_packets",
];

/// Deterministically expand a seed into a random event stream.
fn events(seed: u64, n: usize) -> Vec<Event> {
    let mut rng = Prng::new(seed);
    (0..n)
        .map(|_| Event {
            at: SimTime::from_millis(rng.next_below(120_000)),
            name: NAMES[rng.next_below(NAMES.len() as u64) as usize],
            value: rng.next_below(1 << 22),
            histogram: rng.next_below(2) == 0,
        })
        .collect()
}

fn replay(spec: TelemetrySpec, events: &[Event]) -> EpochSeries {
    let mut s = EpochSeries::new(spec);
    for e in events {
        if e.histogram {
            s.observe(e.at, e.name, e.value);
        } else {
            s.add(e.at, e.name, e.value);
        }
    }
    s
}

fn histogram_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::default();
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Histogram merge is associative and commutative, and merging the
    /// parts equals observing the concatenation directly.
    #[test]
    fn log_histogram_merge_is_a_commutative_monoid(
        xs in prop::collection::vec(0u64..5_000_000, 0..40),
        ys in prop::collection::vec(0u64..5_000_000, 0..40),
        zs in prop::collection::vec(0u64..5_000_000, 0..40),
    ) {
        let (a, b, c) = (histogram_of(&xs), histogram_of(&ys), histogram_of(&zs));

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "merge is not associative");

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "merge is not commutative");

        // Identity element: the empty histogram.
        let mut a_id = a.clone();
        a_id.merge(&LogHistogram::default());
        prop_assert_eq!(&a_id, &a);

        let mut all = xs.clone();
        all.extend(&ys);
        let direct = histogram_of(&all);
        prop_assert_eq!(&ab, &direct, "merged parts differ from the whole");
    }

    /// Epoch-series merge is associative and commutative structurally
    /// and on serialized bytes, even when the streams touch different
    /// names in different orders and span different epoch counts.
    #[test]
    fn epoch_series_merge_is_associative_and_commutative(
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
        seed_c in 0u64..1_000_000,
        n in 0usize..60,
        epoch_ms in 200u64..5_000,
    ) {
        let spec = TelemetrySpec::new(SimDuration::from_millis(epoch_ms));
        let a = replay(spec, &events(seed_a, n));
        let b = replay(spec, &events(seed_b, n / 2 + 1));
        let c = replay(spec, &events(seed_c, n / 3 + 1));

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "series merge is not associative");
        prop_assert_eq!(
            ab_c.to_json().to_pretty(),
            a_bc.to_json().to_pretty(),
            "associativity holds structurally but not on bytes"
        );

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "series merge is not commutative");
        prop_assert_eq!(
            ab.to_json().to_pretty(),
            ba.to_json().to_pretty(),
            "commutativity holds structurally but not on bytes"
        );
    }

    /// Sharding one event stream across N shard-local series and
    /// merging them — in ascending or descending shard order — yields
    /// bytes identical to the single-shard replay. This is exactly the
    /// `MPDASH_WORKERS` 1-vs-N contract the fleet relies on.
    #[test]
    fn shard_merged_series_match_single_shard_bytes(
        seed in 0u64..1_000_000,
        n in 1usize..120,
        n_shards in 1usize..7,
        epoch_ms in 200u64..5_000,
    ) {
        let spec = TelemetrySpec::new(SimDuration::from_millis(epoch_ms));
        let stream = events(seed, n);
        let single = replay(spec, &stream);

        let shards: Vec<EpochSeries> = (0..n_shards)
            .map(|s| {
                let mine: Vec<Event> = stream
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % n_shards == s)
                    .map(|(_, e)| e.clone())
                    .collect();
                replay(spec, &mine)
            })
            .collect();

        let mut fwd = EpochSeries::new(spec);
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = EpochSeries::new(spec);
        for s in shards.iter().rev() {
            rev.merge(s);
        }

        let want = single.to_json().to_pretty();
        prop_assert_eq!(fwd.to_json().to_pretty(), want.clone(),
            "ascending shard merge diverged from single-shard bytes");
        prop_assert_eq!(rev.to_json().to_pretty(), want,
            "descending shard merge diverged from single-shard bytes");
    }
}
