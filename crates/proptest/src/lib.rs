//! Minimal in-tree property-testing harness.
//!
//! The workspace's property tests were written against the `proptest`
//! crate, which cannot be fetched in this build environment (no registry
//! access). This path crate keeps those tests — and every assertion in
//! them — compiling and running by implementing the subset of the API
//! they use:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn name(x in strat, ...) { ... } }`
//! * integer and float [`std::ops::Range`] strategies
//! * `prop::collection::vec(strategy, size_range)`
//! * `any::<bool>()`
//! * `prop_assert!` / `prop_assert_eq!`
//!
//! Differences from the real crate: generation is deterministic per test
//! name (seeded by FNV-1a of the name, so runs are reproducible without a
//! persistence file) and there is no shrinking — a failure reports the
//! exact generated inputs instead.

use std::ops::Range;

/// A failed (or rejected) test case, carried by `Err` out of the test
/// body closure. Produced by `prop_assert!` / `prop_assert_eq!`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Harness configuration: how many random cases each test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic test-case RNG (SplitMix64 — same generator family the
/// simulator uses, re-implemented here to keep this crate dependency-free).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; the tiny modulo bias is irrelevant for test
        // input generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Something that can generate values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty range strategy");
                self.start + rng.next_below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        let span = self.end.wrapping_sub(self.start) as u64;
        assert!(span > 0, "empty range strategy");
        self.start.wrapping_add(rng.next_below(span) as i64)
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the arbitrary-value strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.sizes.end - self.sizes.start) as u64;
            assert!(span > 0, "empty size range");
            let n = self.sizes.start + rng.next_below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector strategy: each element from `element`, length in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Drive one property test: run `f` for the configured number of cases
/// (overridable via the `PROPTEST_CASES` env var), panicking with the
/// generated inputs on the first failure. Called by the `proptest!`
/// macro expansion, not directly.
pub fn run_proptest<F>(name: &str, config: ProptestConfig, mut f: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    let mut rng = TestRng::new(fnv1a(name));
    for case in 0..cases {
        let (inputs, result) = f(&mut rng);
        if let Err(e) = result {
            panic!(
                "property '{name}' failed at case {}/{cases}: {e}\n  inputs: {inputs}",
                case + 1
            );
        }
    }
}

/// Define property tests. Supports the standard shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn holds(x in 0.5f64..20.0, flag in any::<bool>()) {
///         prop_assert!(x > 0.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest(
                    stringify!($name),
                    $config,
                    |__proptest_rng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                        let __proptest_inputs = format!(
                            concat!($(stringify!($arg), " = {:?}; "),+),
                            $(&$arg),+
                        );
                        let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                            (|| {
                                $body
                                ::std::result::Result::Ok(())
                            })();
                        (__proptest_inputs, __proptest_result)
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config(<$crate::ProptestConfig as ::std::default::Default>::default())]
            $( $(#[$meta])* fn $name( $($arg in $strat),+ ) $body )*
        }
    };
}

/// Assert a condition inside a `proptest!` body; on failure the case is
/// reported with its generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) ({})",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Everything the property-test files import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..500 {
            let f = (0.5f64..20.0).generate(&mut rng);
            assert!((0.5..20.0).contains(&f));
            let u = (5u64..120).generate(&mut rng);
            assert!((5..120).contains(&u));
            let b = (0u8..8).generate(&mut rng);
            assert!(b < 8);
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = collection::vec(0.0f64..10.0, 4..20).generate(&mut rng);
            assert!((4..20).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..10.0).contains(x)));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::new(fnv1a("some_test"));
        let mut b = TestRng::new(fnv1a("some_test"));
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::new(fnv1a("other_test"));
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_round_trip(
            x in 1.0f64..2.0,
            n in 1u64..10,
            flag in any::<bool>(),
            v in prop::collection::vec(0u32..5, 1..4),
        ) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!(n >= 1, "n was {n}");
            prop_assert_eq!(flag, flag);
            prop_assert!(!v.is_empty());
            if n > 100 {
                return Ok(()); // exercise the early-return shape
            }
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failure_reports_inputs() {
        run_proptest("always_fails", ProptestConfig::with_cases(5), |rng| {
            let x = (0u64..10).generate(rng);
            (format!("x = {x:?}"), Err(TestCaseError::fail("boom")))
        });
    }
}
