//! A small, dependency-free JSON value model with a strict parser and a
//! deterministic writer.
//!
//! The writer is byte-stable: object members keep insertion order,
//! integers print as integers, and floats use Rust's shortest
//! round-trip formatting — so serializing the same value twice (or on
//! two machines) yields identical bytes. That property is what lets the
//! batch runner assert that a parallel experiment run serializes
//! *byte-identically* to the sequential one.

use std::fmt;

/// A JSON value. Object members preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part, kept exact.
    Int(i64),
    /// Any other finite number. Non-finite floats serialize as `null`
    /// (matching serde_json's behaviour).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`] or from schema accessors.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// A schema/shape error with the given description.
    pub fn schema(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        if v <= i64::MAX as u64 {
            Json::Int(v as i64)
        } else {
            Json::Float(v as f64)
        }
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::from(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Object member by key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object member by key, or a schema error naming the key.
    pub fn req(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::schema(format!("missing field '{key}'")))
    }

    /// `&str` view, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view: integers and floats both convert.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view; floats with zero fraction convert too.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::Float(v) if v.fract() == 0.0 && v.abs() < i64::MAX as f64 => Some(*v as i64),
            _ => None,
        }
    }

    /// Non-negative integer view.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|v| u64::try_from(v).ok())
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parse a JSON document. Strict: exactly one value, UTF-8 input,
    /// no trailing garbage (whitespace excepted).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Serialize compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation and a trailing newline — the
    /// artifact format every `exp_*` binary writes under `results/`.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => {
                out.push_str(&v.to_string());
            }
            Json::Float(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_compact())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's `{}` is the shortest representation that round-trips, and
    // is platform-independent; force a fractional marker so the value
    // re-parses as Float, keeping serialize∘parse a fixed point.
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        // Report 1-based line/column of the current position.
        let mut line = 1usize;
        let mut col = 1usize;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError::schema(format!("{msg} at line {line}, column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: decode the low half too.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 leaves pos after the 4 digits; skip the
                            // extra advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar; input is a &str so the
                    // boundaries are valid.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures_preserving_order() {
        let v = Json::parse(r#"{"b": [1, 2.0, "x"], "a": {"nested": null}}"#).unwrap();
        let members = v.as_obj().unwrap();
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(
            v.get("b").unwrap().as_arr().unwrap(),
            &[Json::Int(1), Json::Float(2.0), Json::Str("x".into())]
        );
        assert!(v.get("a").unwrap().get("nested").unwrap().is_null());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("line\nquote\"slash\\tab\tunicode é ☃".into());
        let text = original.to_compact();
        assert_eq!(Json::parse(&text).unwrap(), original);
        // Explicit \u escapes parse too.
        assert_eq!(
            Json::parse(r#""é ☃ 😀""#).unwrap(),
            Json::Str("é ☃ 😀".into())
        );
    }

    #[test]
    fn serialization_is_a_fixed_point() {
        let v = Json::obj([
            ("name", Json::from("field")),
            ("count", Json::from(33u64)),
            ("fraction", Json::from(0.515)),
            ("whole", Json::from(2.0)),
            ("list", Json::arr([Json::Int(1), Json::Float(0.1)])),
            ("none", Json::Null),
        ]);
        let pretty = v.to_pretty();
        let reparsed = Json::parse(&pretty).unwrap();
        assert_eq!(reparsed, v);
        assert_eq!(reparsed.to_pretty(), pretty, "pretty form is stable");
        let compact = v.to_compact();
        assert_eq!(Json::parse(&compact).unwrap().to_compact(), compact);
    }

    #[test]
    fn whole_floats_stay_floats() {
        // 2.0 must not collapse to the integer 2 across a round trip.
        let v = Json::Float(2.0);
        assert_eq!(v.to_compact(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        let err = Json::parse("{\n  \"a\": !\n}").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 3, "f": 1.5, "s": "x", "b": true}"#).unwrap();
        assert_eq!(v.req("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.req("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.req("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.req("f").unwrap().as_i64(), None);
        assert_eq!(v.req("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.req("b").unwrap().as_bool(), Some(true));
        assert!(v.req("missing").is_err());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_compact(), "null");
    }
}
