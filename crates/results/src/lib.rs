//! Typed experiment results for the MP-DASH benchmark harness.
//!
//! Every `exp_*` experiment used to *print* its tables directly; this
//! crate splits that into compute → persist → render:
//!
//! * an experiment **computes** an [`ExperimentResult`] — an ordered
//!   list of [`Block`]s (tables, CDF summaries, metric series, scalar
//!   groups, prose);
//! * the result **persists** as a JSON artifact under `results/` (see
//!   [`write_artifact`]), deterministic byte-for-byte, so CI gates and
//!   the analysis crate can consume numbers instead of scraping stdout;
//! * [`ExperimentResult::render`] is a **pure function** of the result —
//!   rendering a deserialized artifact reproduces the printed report
//!   exactly (the round-trip the test suite asserts).
//!
//! The JSON value model itself lives in [`json`]; it exists because the
//! build environment has no registry access, so serde is replaced by a
//! small hand-rolled layer with a byte-stable writer.

pub mod json;

pub use json::{Json, JsonError};

use mpdash_sim::series::Cdf;
use mpdash_sim::{Series, SimDuration};

/// The quantile grid persisted for every CDF: extremes, quartiles, and
/// the tails the paper quotes (5th/95th).
pub const CDF_QUANTILES: [f64; 7] = [0.0, 0.05, 0.25, 0.50, 0.75, 0.95, 1.0];

/// A table: header plus string rows, rendered with padded columns.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct TableData {
    /// Optional caption printed above the table.
    pub title: Option<String>,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows; each must match the header arity.
    pub rows: Vec<Vec<String>>,
}

impl TableData {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TableData {
            title: None,
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Same table with a caption.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Append one row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with padded, right-aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let pad = widths[i].saturating_sub(c.chars().count());
                s.push(' ');
                for _ in 0..pad {
                    s.push(' ');
                }
                s.push_str(c);
                s.push_str(" |");
            }
            s.push('\n');
            s
        };
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        out.push_str(&fmt_row(&self.header));
        let mut sep = String::from("|");
        for w in &widths {
            for _ in 0..w + 2 {
                sep.push('-');
            }
            sep.push('|');
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// A named time series, persisted as `(seconds, value)` points.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSeries {
    /// Series label, e.g. `wifi_mbps`.
    pub name: String,
    /// Unit of the values, e.g. `Mbps`.
    pub unit: String,
    /// `(time seconds, value)` points in time order.
    pub points: Vec<(f64, f64)>,
}

impl MetricSeries {
    /// Capture a simulator [`Series`] after windowed aggregation.
    pub fn from_points(
        name: impl Into<String>,
        unit: impl Into<String>,
        points: impl IntoIterator<Item = (f64, f64)>,
    ) -> Self {
        MetricSeries {
            name: name.into(),
            unit: unit.into(),
            points: points.into_iter().collect(),
        }
    }

    /// Capture a raw byte-count [`Series`] as a throughput series in
    /// Mbps over `window` buckets.
    pub fn throughput(name: impl Into<String>, series: &Series, window: SimDuration) -> Self {
        MetricSeries::from_points(
            name,
            "Mbps",
            series
                .throughput_mbps(window)
                .into_iter()
                .map(|(t, v)| (t.as_secs_f64(), v)),
        )
    }
}

/// A summarized empirical distribution: count, mean, and a fixed
/// quantile grid — what the paper's Figure 9/10 CDFs persist.
#[derive(Clone, Debug, PartialEq)]
pub struct CdfSummary {
    /// Metric name, e.g. `cell_saving`.
    pub name: String,
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (NaN when empty; serializes as null).
    pub mean: f64,
    /// `(q, value)` pairs over [`CDF_QUANTILES`].
    pub quantiles: Vec<(f64, f64)>,
}

impl CdfSummary {
    /// Summarize a [`Cdf`] at the standard quantile grid.
    pub fn from_cdf(name: impl Into<String>, cdf: &mut Cdf) -> Self {
        CdfSummary {
            name: name.into(),
            count: cdf.len(),
            mean: cdf.mean().unwrap_or(f64::NAN),
            quantiles: cdf.quantiles(&CDF_QUANTILES),
        }
    }

    /// The value at quantile `q`, if `q` is on the persisted grid.
    pub fn at(&self, q: f64) -> Option<f64> {
        self.quantiles
            .iter()
            .find(|&&(qq, _)| (qq - q).abs() < 1e-12)
            .map(|&(_, v)| v)
    }
}

/// A titled group of named scalar metrics — the machine-readable form
/// of "headline numbers" an experiment prints in prose.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalarGroup {
    /// Group label.
    pub title: String,
    /// `(name, value)` pairs in declaration order.
    pub values: Vec<(String, f64)>,
}

impl ScalarGroup {
    /// An empty group.
    pub fn new(title: impl Into<String>) -> Self {
        ScalarGroup {
            title: title.into(),
            values: Vec::new(),
        }
    }

    /// Append one scalar; returns `self` for chaining.
    pub fn with(mut self, name: impl Into<String>, value: f64) -> Self {
        self.values.push((name.into(), value));
        self
    }

    /// Value by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// One ordered element of an experiment report.
#[derive(Clone, Debug, PartialEq)]
pub enum Block {
    /// Free prose, printed verbatim (one trailing newline added).
    Text(String),
    /// A rendered table.
    Table(TableData),
    /// A summarized distribution.
    Cdf(CdfSummary),
    /// A time series (persisted in full, rendered as a one-line note).
    Series(MetricSeries),
    /// Named scalar metrics.
    Scalars(ScalarGroup),
}

/// A full experiment result: what an `exp_*` binary computes, persists
/// and renders.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentResult {
    /// Artifact stem: `results/<name>.json`.
    pub name: String,
    /// Banner title.
    pub title: String,
    /// Whether this was a reduced quick-mode run.
    pub quick: bool,
    /// Report blocks in print order.
    pub blocks: Vec<Block>,
}

impl ExperimentResult {
    /// An empty result.
    pub fn new(name: impl Into<String>, title: impl Into<String>) -> Self {
        ExperimentResult {
            name: name.into(),
            title: title.into(),
            quick: false,
            blocks: Vec::new(),
        }
    }

    /// Mark as a quick-mode run.
    pub fn with_quick(mut self, quick: bool) -> Self {
        self.quick = quick;
        self
    }

    /// Append a block.
    pub fn push(&mut self, block: Block) {
        self.blocks.push(block);
    }

    /// Append prose.
    pub fn text(&mut self, s: impl Into<String>) {
        self.blocks.push(Block::Text(s.into()));
    }

    /// Append a table.
    pub fn table(&mut self, t: TableData) {
        self.blocks.push(Block::Table(t));
    }

    /// Append a CDF summary.
    pub fn cdf(&mut self, c: CdfSummary) {
        self.blocks.push(Block::Cdf(c));
    }

    /// Append a series.
    pub fn series(&mut self, s: MetricSeries) {
        self.blocks.push(Block::Series(s));
    }

    /// Append a scalar group.
    pub fn scalars(&mut self, g: ScalarGroup) {
        self.blocks.push(Block::Scalars(g));
    }

    /// All CDF summaries, for downstream consumers.
    pub fn cdfs(&self) -> impl Iterator<Item = &CdfSummary> {
        self.blocks.iter().filter_map(|b| match b {
            Block::Cdf(c) => Some(c),
            _ => None,
        })
    }

    /// All scalar groups.
    pub fn scalar_groups(&self) -> impl Iterator<Item = &ScalarGroup> {
        self.blocks.iter().filter_map(|b| match b {
            Block::Scalars(g) => Some(g),
            _ => None,
        })
    }

    /// Render the full printed report. Pure: depends only on `self`, so
    /// a deserialized artifact renders identically to the original.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("\n================================================================\n");
        out.push_str(&self.title);
        if self.quick {
            out.push_str(" [quick]");
        }
        out.push('\n');
        out.push_str("================================================================\n");
        for block in &self.blocks {
            match block {
                Block::Text(s) => {
                    out.push_str(s);
                    out.push('\n');
                }
                Block::Table(t) => {
                    out.push_str(&t.render());
                }
                Block::Cdf(c) => {
                    let mut t = TableData::new(&["percentile", &format!("{} ", c.name)]);
                    for &(q, v) in &c.quantiles {
                        t.row(&[format!("{:.0}th", q * 100.0), format!("{:.2}%", v * 100.0)]);
                    }
                    out.push_str(&format!(
                        "CDF {} — {} observations, mean {:.4}:\n",
                        c.name, c.count, c.mean
                    ));
                    out.push_str(&t.render());
                }
                Block::Series(s) => {
                    out.push_str(&format!(
                        "[series {}: {} points, {}]\n",
                        s.name,
                        s.points.len(),
                        s.unit
                    ));
                }
                Block::Scalars(g) => {
                    out.push_str(&g.title);
                    out.push('\n');
                    for (name, v) in &g.values {
                        out.push_str(&format!("  {name}: {v:.4}\n"));
                    }
                }
            }
        }
        out
    }

    /// Serialize to the artifact JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from("mpdash-experiment/1")),
            ("name", Json::from(self.name.as_str())),
            ("title", Json::from(self.title.as_str())),
            ("quick", Json::from(self.quick)),
            ("blocks", Json::arr(self.blocks.iter().map(block_to_json))),
        ])
    }

    /// Deserialize from an artifact document.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let schema = v.req("schema")?.as_str().unwrap_or_default();
        if schema != "mpdash-experiment/1" {
            return Err(JsonError::schema(format!(
                "unsupported artifact schema '{schema}'"
            )));
        }
        let blocks = v
            .req("blocks")?
            .as_arr()
            .ok_or_else(|| JsonError::schema("'blocks' must be an array"))?
            .iter()
            .map(block_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ExperimentResult {
            name: str_field(v, "name")?,
            title: str_field(v, "title")?,
            quick: v.req("quick")?.as_bool().unwrap_or(false),
            blocks,
        })
    }

    /// Parse an artifact from its serialized text.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }
}

fn str_field(v: &Json, key: &str) -> Result<String, JsonError> {
    v.req(key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| JsonError::schema(format!("'{key}' must be a string")))
}

fn f64_field(v: &Json, key: &str) -> Result<f64, JsonError> {
    // Mean of an empty CDF persists as null → NaN.
    let f = v.req(key)?;
    if f.is_null() {
        return Ok(f64::NAN);
    }
    f.as_f64()
        .ok_or_else(|| JsonError::schema(format!("'{key}' must be a number")))
}

fn pairs_to_json(pairs: &[(f64, f64)]) -> Json {
    Json::arr(
        pairs
            .iter()
            .map(|&(a, b)| Json::arr([Json::Float(a), Json::Float(b)])),
    )
}

fn pairs_from_json(v: &Json, what: &str) -> Result<Vec<(f64, f64)>, JsonError> {
    v.as_arr()
        .ok_or_else(|| JsonError::schema(format!("'{what}' must be an array")))?
        .iter()
        .map(|p| {
            let items = p
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| JsonError::schema(format!("'{what}' entries must be pairs")))?;
            match (items[0].as_f64(), items[1].as_f64()) {
                (Some(a), Some(b)) => Ok((a, b)),
                _ => {
                    // NaN/∞ serialize as null; map them back to NaN.
                    let a = if items[0].is_null() {
                        f64::NAN
                    } else {
                        items[0].as_f64().ok_or_else(|| {
                            JsonError::schema(format!("'{what}' entries must be numeric"))
                        })?
                    };
                    let b = if items[1].is_null() {
                        f64::NAN
                    } else {
                        items[1].as_f64().ok_or_else(|| {
                            JsonError::schema(format!("'{what}' entries must be numeric"))
                        })?
                    };
                    Ok((a, b))
                }
            }
        })
        .collect()
}

fn block_to_json(b: &Block) -> Json {
    match b {
        Block::Text(s) => Json::obj([
            ("type", Json::from("text")),
            ("text", Json::from(s.as_str())),
        ]),
        Block::Table(t) => Json::obj([
            ("type", Json::from("table")),
            (
                "title",
                t.title.as_deref().map(Json::from).unwrap_or(Json::Null),
            ),
            (
                "header",
                Json::arr(t.header.iter().map(|h| Json::from(h.as_str()))),
            ),
            (
                "rows",
                Json::arr(
                    t.rows
                        .iter()
                        .map(|r| Json::arr(r.iter().map(|c| Json::from(c.as_str())))),
                ),
            ),
        ]),
        Block::Cdf(c) => Json::obj([
            ("type", Json::from("cdf")),
            ("name", Json::from(c.name.as_str())),
            ("count", Json::from(c.count)),
            ("mean", Json::Float(c.mean)),
            ("quantiles", pairs_to_json(&c.quantiles)),
        ]),
        Block::Series(s) => Json::obj([
            ("type", Json::from("series")),
            ("name", Json::from(s.name.as_str())),
            ("unit", Json::from(s.unit.as_str())),
            ("points", pairs_to_json(&s.points)),
        ]),
        Block::Scalars(g) => Json::obj([
            ("type", Json::from("scalars")),
            ("title", Json::from(g.title.as_str())),
            (
                "values",
                Json::Obj(
                    g.values
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Float(*v)))
                        .collect(),
                ),
            ),
        ]),
    }
}

fn block_from_json(v: &Json) -> Result<Block, JsonError> {
    let ty = v.req("type")?.as_str().unwrap_or_default();
    match ty {
        "text" => Ok(Block::Text(str_field(v, "text")?)),
        "table" => {
            let header = v
                .req("header")?
                .as_arr()
                .ok_or_else(|| JsonError::schema("'header' must be an array"))?
                .iter()
                .map(|h| {
                    h.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| JsonError::schema("table headers must be strings"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let rows = v
                .req("rows")?
                .as_arr()
                .ok_or_else(|| JsonError::schema("'rows' must be an array"))?
                .iter()
                .map(|r| {
                    r.as_arr()
                        .ok_or_else(|| JsonError::schema("table rows must be arrays"))?
                        .iter()
                        .map(|c| {
                            c.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| JsonError::schema("table cells must be strings"))
                        })
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Block::Table(TableData {
                title: v.get("title").and_then(|t| t.as_str()).map(str::to_string),
                header,
                rows,
            }))
        }
        "cdf" => Ok(Block::Cdf(CdfSummary {
            name: str_field(v, "name")?,
            count: v
                .req("count")?
                .as_u64()
                .ok_or_else(|| JsonError::schema("'count' must be an integer"))?
                as usize,
            mean: f64_field(v, "mean")?,
            quantiles: pairs_from_json(v.req("quantiles")?, "quantiles")?,
        })),
        "series" => Ok(Block::Series(MetricSeries {
            name: str_field(v, "name")?,
            unit: str_field(v, "unit")?,
            points: pairs_from_json(v.req("points")?, "points")?,
        })),
        "scalars" => {
            let values = v
                .req("values")?
                .as_obj()
                .ok_or_else(|| JsonError::schema("'values' must be an object"))?
                .iter()
                .map(|(k, val)| {
                    let f = if val.is_null() {
                        f64::NAN
                    } else {
                        val.as_f64()
                            .ok_or_else(|| JsonError::schema("scalar values must be numeric"))?
                    };
                    Ok((k.clone(), f))
                })
                .collect::<Result<Vec<_>, JsonError>>()?;
            Ok(Block::Scalars(ScalarGroup {
                title: str_field(v, "title")?,
                values,
            }))
        }
        other => Err(JsonError::schema(format!("unknown block type '{other}'"))),
    }
}

/// Directory artifacts are written to: `MPDASH_RESULTS_DIR` if set,
/// otherwise `results/` under the current directory.
pub fn artifact_dir() -> std::path::PathBuf {
    std::env::var_os("MPDASH_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"))
}

/// Write `result` as `results/<name>.json` (creating the directory) and
/// return the path.
///
/// The write is atomic: the bytes land in a temporary file in the same
/// directory which is then renamed over the target, so a crash (or a
/// concurrent reader — experiments run in parallel batches) never
/// observes a truncated artifact. The temp name is keyed by process id
/// so concurrent writers of *different* experiments cannot collide.
pub fn write_artifact(result: &ExperimentResult) -> std::io::Result<std::path::PathBuf> {
    write_artifact_to(&artifact_dir(), result)
}

/// [`write_artifact`] with an explicit target directory.
pub fn write_artifact_to(
    dir: &std::path::Path,
    result: &ExperimentResult,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", result.name));
    let tmp = dir.join(format!(".{}.json.{}.tmp", result.name, std::process::id()));
    std::fs::write(&tmp, result.to_json().to_pretty())?;
    // Same directory, so the rename cannot cross a filesystem boundary.
    if let Err(e) = std::fs::rename(&tmp, &path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(path)
}

/// Percent formatting helper (two decimals, paper style).
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Megabyte formatting helper.
pub fn mb(bytes: u64) -> String {
    format!("{:.2} MB", bytes as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> ExperimentResult {
        let mut r = ExperimentResult::new("demo", "Demo experiment").with_quick(true);
        r.text("intro prose");
        let mut t = TableData::new(&["config", "saving"]).with_title("savings:");
        t.row(&["Rate".into(), pct(0.515)]);
        t.row(&["Duration".into(), pct(0.402)]);
        r.table(t);
        let mut cdf = Cdf::new();
        for v in [0.1, 0.5, 0.9, 0.3] {
            cdf.push(v);
        }
        r.cdf(CdfSummary::from_cdf("cell_saving", &mut cdf));
        r.series(MetricSeries::from_points(
            "wifi_mbps",
            "Mbps",
            [(0.0, 3.8), (1.0, 3.7)],
        ));
        r.scalars(
            ScalarGroup::new("headline")
                .with("no_reduction_fraction", 0.8265)
                .with("median_saving", 0.59),
        );
        r
    }

    #[test]
    fn artifact_write_is_atomic_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("mpdash-artifact-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = sample_result();
        let path = write_artifact_to(&dir, &r).expect("artifact written");
        assert_eq!(path, dir.join("demo.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, r.to_json().to_pretty());
        // Overwrite goes through the same rename; the directory must hold
        // exactly the finished artifact, never a leftover temp file.
        write_artifact_to(&dir, &r).expect("artifact rewritten");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["demo.json".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn artifact_round_trip_preserves_value_and_render() {
        let r = sample_result();
        let text = r.to_json().to_pretty();
        let back = ExperimentResult::parse(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.render(), r.render());
        assert_eq!(back.to_json().to_pretty(), text, "serialization stable");
    }

    #[test]
    fn render_contains_all_parts() {
        let r = sample_result();
        let out = r.render();
        assert!(out.contains("Demo experiment [quick]"));
        assert!(out.contains("intro prose"));
        assert!(out.contains("|     Rate | 51.50% |"), "{out}");
        assert!(out.contains("CDF cell_saving — 4 observations"));
        assert!(out.contains("[series wifi_mbps: 2 points, Mbps]"));
        assert!(out.contains("no_reduction_fraction: 0.8265"));
    }

    #[test]
    fn cdf_summary_grid_lookup() {
        let mut cdf = Cdf::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            cdf.push(v);
        }
        let s = CdfSummary::from_cdf("x", &mut cdf);
        assert_eq!(s.count, 5);
        assert_eq!(s.at(0.5), Some(3.0));
        assert_eq!(s.at(0.0), Some(1.0));
        assert_eq!(s.at(1.0), Some(5.0));
        assert!(s.at(0.33).is_none());
        assert!((s.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf_mean_survives_round_trip_as_nan() {
        let mut r = ExperimentResult::new("e", "E");
        r.cdf(CdfSummary::from_cdf("empty", &mut Cdf::new()));
        let text = r.to_json().to_pretty();
        let back = ExperimentResult::parse(&text).unwrap();
        let c = back.cdfs().next().unwrap();
        assert!(c.mean.is_nan());
        assert_eq!(c.count, 0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TableData::new(&["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("| a | bbbb |"));
        assert!(s.contains("| 1 |    2 |"));
    }

    #[test]
    fn rejects_unknown_schema() {
        assert!(ExperimentResult::parse(r#"{"schema": "other/9", "blocks": []}"#).is_err());
    }
}
