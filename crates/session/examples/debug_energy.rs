use mpdash_dash::abr::AbrKind;
use mpdash_dash::video::Video;
use mpdash_link::PathId;
use mpdash_session::*;
use mpdash_sim::{SimDuration, SimTime};
use mpdash_trace::table1;

fn short_video() -> Video {
    Video::new(
        "Big Buck Bunny (short)",
        &[0.58, 1.01, 1.47, 2.41, 3.94],
        SimDuration::from_secs(4),
        40,
    )
}

fn main() {
    // File transfer diagnostics
    for (name, mode) in [
        ("vanilla", TransportMode::Vanilla),
        ("mpdash", TransportMode::mpdash_rate_based()),
    ] {
        let r = FileTransfer::run(
            FileTransferConfig::testbed(3.8, 3.0, mode).with_deadline(SimDuration::from_secs(10)),
        );
        println!("FT {name}: dur={:.2}s wifi={} cell={} toggles={} E={:.1}J (wifi {:.1} lte {:.1}) lte_breakdown={:?}",
            r.duration.as_secs_f64(), r.wifi_bytes, r.cell_bytes, r.toggles, r.energy.total_j(),
            r.energy.wifi.total_j(), r.energy.lte.total_j(), r.energy.lte);
    }
    // Streaming diagnostics
    for (name, mode) in [
        ("vanilla", TransportMode::Vanilla),
        ("mpdash-rate", TransportMode::mpdash_rate_based()),
    ] {
        let cfg = SessionConfig::controlled(
            table1::synthetic_profile_pair(17.8, 5.18, 0.12, 6),
            AbrKind::Festive,
            mode,
        )
        .with_video(short_video());
        let r = StreamingSession::run(cfg);
        println!("ST {name}: dur={:.1}s wifi={:.2}MB cell={:.2}MB stats={:?} E={:.1}J (wifi {:.1} lte {:.1})",
            r.duration.as_secs_f64(), r.wifi_bytes as f64/1e6, r.cell_bytes as f64/1e6, r.scheduler_stats,
            r.energy.total_j(), r.energy.wifi.total_j(), r.energy.lte.total_j());
        println!("   lte: {:?}", r.energy.lte);
        println!("   wifi: {:?}", r.energy.wifi);
        // cellular packet time histogram (second resolution, only count)
        let cells: Vec<f64> = r
            .records
            .iter()
            .filter(|p| p.path == PathId::CELLULAR)
            .map(|p| p.t.as_secs_f64())
            .collect();
        if !cells.is_empty() {
            println!(
                "   cell pkt times: first={:.1} last={:.1} n={}",
                cells[0],
                cells.last().unwrap(),
                cells.len()
            );
            // gaps > 11.6s?
            let mut gaps = 0;
            for w in cells.windows(2) {
                if w[1] - w[0] > 11.576 {
                    gaps += 1;
                }
            }
            println!("   lte sleep opportunities (gaps>tail): {gaps}");
        }
        let deadline_chunks = r.chunks.iter().filter(|c| c.deadline.is_some()).count();
        println!(
            "   chunks with deadline: {}/{}",
            deadline_chunks,
            r.chunks.len()
        );
        let _ = SimTime::ZERO;
    }
}
