//! Energy debugging harness on the structured observability layer.
//!
//! Attaches a [`RingSink`] to each streaming run and reads the virtual-time
//! trace back instead of spelunking raw packet records: scheduler toggles,
//! fault edges, buffer transitions, and the metrics snapshot that ships in
//! every [`SessionReport`]. Run with `cargo run -p mpdash-session
//! --example debug_energy`.

use mpdash_dash::abr::AbrKind;
use mpdash_dash::video::Video;
use mpdash_session::*;
use mpdash_sim::SimDuration;
use mpdash_trace::table1;
use std::sync::Arc;

fn short_video() -> Video {
    Video::new(
        "Big Buck Bunny (short)",
        &[0.58, 1.01, 1.47, 2.41, 3.94],
        SimDuration::from_secs(4),
        40,
    )
}

fn main() {
    // File transfer diagnostics.
    for (name, mode) in [
        ("vanilla", TransportMode::Vanilla),
        ("mpdash", TransportMode::mpdash_rate_based()),
    ] {
        let r = FileTransfer::run(
            FileTransferConfig::testbed(3.8, 3.0, mode).with_deadline(SimDuration::from_secs(10)),
        );
        println!("FT {name}: dur={:.2}s wifi={} cell={} toggles={} E={:.1}J (wifi {:.1} lte {:.1}) events={} peak_q={}",
            r.duration.as_secs_f64(), r.wifi_bytes, r.cell_bytes, r.toggles, r.energy.total_j(),
            r.energy.wifi.total_j(), r.energy.lte.total_j(),
            r.sim_profile.events_popped, r.sim_profile.peak_queue_depth);
    }

    // Streaming diagnostics, trace-driven.
    for (name, mode) in [
        ("vanilla", TransportMode::Vanilla),
        ("mpdash-rate", TransportMode::mpdash_rate_based()),
    ] {
        let ring = Arc::new(RingSink::new(1 << 16));
        let cfg = SessionConfig::controlled(
            table1::synthetic_profile_pair(17.8, 5.18, 0.12, 6),
            AbrKind::Festive,
            mode,
        )
        .with_video(short_video())
        .with_tracer(Tracer::new(ring.clone()));
        let r = StreamingSession::run(cfg);
        let stats = r.scheduler_stats;
        println!(
            "ST {name}: dur={:.1}s wifi={:.2}MB cell={:.2}MB toggles={} missed={} completed={} E={:.1}J (wifi {:.1} lte {:.1})",
            r.duration.as_secs_f64(),
            r.wifi_bytes as f64 / 1e6,
            r.cell_bytes as f64 / 1e6,
            stats.toggles,
            stats.missed_deadlines,
            stats.completed_transfers,
            r.energy.total_j(),
            r.energy.wifi.total_j(),
            r.energy.lte.total_j()
        );
        println!("   lte: {:?}", r.energy.lte);
        println!("   wifi: {:?}", r.energy.wifi);

        // Metrics snapshot: the named counters the session maintains.
        for (k, v) in &r.metrics.counters {
            println!("   metric {k} = {v}");
        }
        for (k, h) in &r.metrics.histograms {
            println!("   histogram {k}: n={} sum={}", h.count, h.sum);
        }

        // Cellular on/off timeline straight from the trace: every
        // SchedulerToggle event says what Algorithm 1 decided and why
        // (estimate vs. remaining window).
        let events = ring.events();
        for (t, ev) in &events {
            if let TraceEvent::SchedulerToggle {
                cell_enabled,
                wifi_estimate_mbps,
                received,
                size,
                window_s,
                elapsed_s,
            } = ev
            {
                println!(
                    "   toggle @{:.2}s cell={} wifi_est={:.2}Mbps progress={}/{} window={:.1}s elapsed={:.1}s",
                    t.as_secs_f64(), cell_enabled, wifi_estimate_mbps, received, size, window_s, elapsed_s
                );
            }
        }
        // LTE sleep opportunities: gaps between deadline-gated fetches
        // show up as buffer transitions with no cellular activity; count
        // chunk completions from the trace instead of raw records.
        let fetched = events
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::ChunkFetched { .. }))
            .count();
        let misses = events
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::DeadlineMissed { .. }))
            .count();
        println!(
            "   trace: {} events, {} chunks fetched, {} deadline misses",
            events.len(),
            fetched,
            misses
        );
        let deadline_chunks = r.chunks.iter().filter(|c| c.deadline.is_some()).count();
        println!(
            "   chunks with deadline: {}/{}",
            deadline_chunks,
            r.chunks.len()
        );
    }
}
