//! Deterministic parallel batch runner for experiment jobs.
//!
//! The paper's evaluation is batch-shaped: 33 locations × {FESTIVE, BBA}
//! × {baseline, rate, duration} for the field study alone (§7.3.3).
//! Every experiment builds a flat job list up front, this runner fans the
//! jobs over a fixed pool of scoped threads, and the results come back in
//! input order — so a parallel run is observationally identical to a
//! sequential one:
//!
//! * every job is a **pure function of its config** (all randomness lives
//!   in embedded seeds, the simulator never reads the wall clock);
//! * collection is **order-preserving** ([`mpdash_sim::par_map`]), so
//!   downstream aggregation sees the same sequence regardless of worker
//!   count or completion interleaving;
//! * worker count comes from `MPDASH_WORKERS` (or the machine) and is
//!   deliberately **absent from every report** — artifacts must not
//!   depend on it.
//!
//! [`seed_jobs`] derives independent per-job seeds from one base seed for
//! sweeps that want per-job randomness without hand-numbering streams.

use crate::config::SessionConfig;
use crate::file_transfer::{FileTransfer, FileTransferConfig, FileTransferReport};
use crate::report::SessionReport;
use crate::streaming::StreamingSession;
use mpdash_sim::{default_workers, derive_seed, par_map};

/// What one job runs: a full streaming session or a §7.2 single-file
/// deadline transfer.
#[derive(Clone, Debug)]
pub enum JobSpec {
    /// A streaming session ([`StreamingSession::run`]).
    Session(Box<SessionConfig>),
    /// A deadline file transfer ([`FileTransfer::run`]).
    Transfer(FileTransferConfig),
}

/// One labelled unit of work in a batch.
#[derive(Clone, Debug)]
pub struct Job {
    /// Label carried through to the result (experiment-defined meaning,
    /// e.g. `"loc03/festive/Rate"`).
    pub label: String,
    /// The work itself.
    pub spec: JobSpec,
}

impl Job {
    /// A streaming-session job.
    pub fn session(label: impl Into<String>, cfg: SessionConfig) -> Self {
        Job {
            label: label.into(),
            spec: JobSpec::Session(Box::new(cfg)),
        }
    }

    /// A file-transfer job.
    pub fn transfer(label: impl Into<String>, cfg: FileTransferConfig) -> Self {
        Job {
            label: label.into(),
            spec: JobSpec::Transfer(cfg),
        }
    }

    /// Reseed the job's stochastic components (link loss processes) from
    /// one job-level seed, deriving independent per-link streams.
    pub fn reseed(&mut self, seed: u64) {
        match &mut self.spec {
            JobSpec::Session(cfg) => {
                cfg.wifi.seed = derive_seed(seed, 0);
                cfg.cell.seed = derive_seed(seed, 1);
            }
            JobSpec::Transfer(cfg) => {
                cfg.wifi.seed = derive_seed(seed, 0);
                cfg.cell.seed = derive_seed(seed, 1);
            }
        }
    }
}

/// The report matching a [`JobSpec`].
#[derive(Clone, Debug)]
pub enum JobReport {
    /// From a session job.
    Session(Box<SessionReport>),
    /// From a transfer job.
    Transfer(FileTransferReport),
}

impl JobReport {
    /// The session report; panics on a transfer job (caller mismatch).
    pub fn session(&self) -> &SessionReport {
        match self {
            JobReport::Session(r) => r,
            JobReport::Transfer(_) => panic!("job produced a transfer report"),
        }
    }

    /// The transfer report; panics on a session job.
    pub fn transfer(&self) -> &FileTransferReport {
        match self {
            JobReport::Transfer(r) => r,
            JobReport::Session(_) => panic!("job produced a session report"),
        }
    }
}

/// One completed job: its label and report, at the same index the job
/// occupied in the input list.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// The job's label.
    pub label: String,
    /// The job's report.
    pub report: JobReport,
}

/// Run `jobs` on the default worker count (`MPDASH_WORKERS` env var, else
/// available parallelism), preserving input order.
pub fn run_batch(jobs: Vec<Job>) -> Vec<BatchResult> {
    run_batch_with(jobs, default_workers())
}

/// Run `jobs` on exactly `workers` threads, preserving input order.
///
/// Output is independent of `workers`: each job is a pure function of its
/// config and results are collected by input index.
pub fn run_batch_with(jobs: Vec<Job>, workers: usize) -> Vec<BatchResult> {
    par_map(jobs, workers, |job| BatchResult {
        label: job.label.clone(),
        report: match &job.spec {
            JobSpec::Session(cfg) => {
                JobReport::Session(Box::new(StreamingSession::run((**cfg).clone())))
            }
            JobSpec::Transfer(cfg) => JobReport::Transfer(FileTransfer::run(cfg.clone())),
        },
    })
}

/// Run plain session configs (the common experiment case), preserving
/// order, on the default worker count.
pub fn run_sessions(configs: Vec<SessionConfig>) -> Vec<SessionReport> {
    par_map(configs, default_workers(), |cfg| {
        StreamingSession::run(cfg.clone())
    })
}

/// Run file-transfer configs, preserving order, on the default worker
/// count.
pub fn run_transfers(configs: Vec<FileTransferConfig>) -> Vec<FileTransferReport> {
    par_map(configs, default_workers(), |cfg| FileTransfer::run(cfg.clone()))
}

/// Give every job an independent derived seed: job `i` gets
/// `derive_seed(base, i)`. Use when a sweep wants per-job randomness
/// without hand-numbering seed streams.
pub fn seed_jobs(base: u64, jobs: &mut [Job]) {
    for (i, job) in jobs.iter_mut().enumerate() {
        job.reseed(derive_seed(base, i as u64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransportMode;
    use mpdash_dash::abr::AbrKind;
    use mpdash_dash::video::Video;
    use mpdash_sim::SimDuration;

    fn tiny_cfg(wifi_mbps: f64) -> SessionConfig {
        SessionConfig::controlled_mbps(wifi_mbps, 2.0, AbrKind::Festive, TransportMode::Vanilla)
            .with_video(Video::new(
                "tiny",
                &[0.5, 1.0],
                SimDuration::from_secs(2),
                4,
            ))
    }

    #[test]
    fn batch_preserves_order_and_labels() {
        let jobs: Vec<Job> = (0..6)
            .map(|i| Job::session(format!("job{i}"), tiny_cfg(2.0 + i as f64)))
            .collect();
        let out = run_batch_with(jobs, 3);
        assert_eq!(out.len(), 6);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.label, format!("job{i}"));
            assert!(r.report.session().qoe_all.chunks > 0);
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let mk = || {
            (0..5)
                .map(|i| Job::session(format!("j{i}"), tiny_cfg(1.5 + i as f64)))
                .collect::<Vec<_>>()
        };
        let seq = run_batch_with(mk(), 1);
        let par = run_batch_with(mk(), 4);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.label, b.label);
            let (a, b) = (a.report.session(), b.report.session());
            assert_eq!(a.summary_json().to_pretty(), b.summary_json().to_pretty());
        }
    }

    #[test]
    fn mixed_batch_dispatches_by_spec() {
        let jobs = vec![
            Job::session("s", tiny_cfg(3.0)),
            Job::transfer(
                "t",
                FileTransferConfig::testbed(3.8, 3.0, TransportMode::Vanilla)
                    .with_size(200_000),
            ),
        ];
        let out = run_batch_with(jobs, 2);
        assert!(matches!(out[0].report, JobReport::Session(_)));
        assert!(matches!(out[1].report, JobReport::Transfer(_)));
        assert!(out[1].report.transfer().wifi_bytes > 0);
    }

    #[test]
    fn seed_jobs_gives_distinct_seeds() {
        let mut jobs: Vec<Job> = (0..3).map(|i| Job::session(format!("{i}"), tiny_cfg(2.0))).collect();
        seed_jobs(99, &mut jobs);
        let seeds: Vec<u64> = jobs
            .iter()
            .map(|j| match &j.spec {
                JobSpec::Session(c) => c.wifi.seed,
                JobSpec::Transfer(c) => c.wifi.seed,
            })
            .collect();
        assert_ne!(seeds[0], seeds[1]);
        assert_ne!(seeds[1], seeds[2]);
        // Re-deriving is stable.
        let mut again: Vec<Job> = (0..3).map(|i| Job::session(format!("{i}"), tiny_cfg(2.0))).collect();
        seed_jobs(99, &mut again);
        match (&jobs[0].spec, &again[0].spec) {
            (JobSpec::Session(a), JobSpec::Session(b)) => {
                assert_eq!(a.wifi.seed, b.wifi.seed);
                assert_ne!(a.wifi.seed, a.cell.seed);
            }
            _ => unreachable!(),
        }
    }
}
