//! Deterministic parallel batch runner for experiment jobs.
//!
//! The paper's evaluation is batch-shaped: 33 locations × {FESTIVE, BBA}
//! × {baseline, rate, duration} for the field study alone (§7.3.3).
//! Every experiment builds a flat job list up front, this runner fans the
//! jobs over a fixed pool of scoped threads, and the results come back in
//! input order — so a parallel run is observationally identical to a
//! sequential one:
//!
//! * every job is a **pure function of its config** (all randomness lives
//!   in embedded seeds, the simulator never reads the wall clock);
//! * collection is **order-preserving** ([`mpdash_sim::par_map`]), so
//!   downstream aggregation sees the same sequence regardless of worker
//!   count or completion interleaving;
//! * worker count comes from `MPDASH_WORKERS` (or the machine) and is
//!   deliberately **absent from every report** — artifacts must not
//!   depend on it.
//!
//! [`seed_jobs`] derives independent per-job seeds from one base seed for
//! sweeps that want per-job randomness without hand-numbering streams.

use crate::config::SessionConfig;
use crate::file_transfer::{FileTransfer, FileTransferConfig, FileTransferReport};
use crate::report::SessionReport;
use crate::streaming::StreamingSession;
use mpdash_sim::{default_workers, derive_seed, par_map};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Arbitrary batch work: any function producing a [`JobReport`]. Lets
/// experiments mix bespoke computations (or fault-injection probes that
/// are *expected* to panic) into an ordinary batch.
#[derive(Clone)]
pub struct CustomJob(pub Arc<dyn Fn() -> JobReport + Send + Sync>);

impl fmt::Debug for CustomJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CustomJob(..)")
    }
}

/// What one job runs: a full streaming session or a §7.2 single-file
/// deadline transfer.
#[derive(Clone, Debug)]
pub enum JobSpec {
    /// A streaming session ([`StreamingSession::run`]).
    Session(Box<SessionConfig>),
    /// A deadline file transfer ([`FileTransfer::run`]).
    Transfer(Box<FileTransferConfig>),
    /// An arbitrary computation (see [`Job::custom`]).
    Custom(CustomJob),
}

/// One labelled unit of work in a batch.
#[derive(Clone, Debug)]
pub struct Job {
    /// Label carried through to the result (experiment-defined meaning,
    /// e.g. `"loc03/festive/Rate"`).
    pub label: String,
    /// The work itself.
    pub spec: JobSpec,
}

impl Job {
    /// A streaming-session job.
    pub fn session(label: impl Into<String>, cfg: SessionConfig) -> Self {
        Job {
            label: label.into(),
            spec: JobSpec::Session(Box::new(cfg)),
        }
    }

    /// A file-transfer job.
    pub fn transfer(label: impl Into<String>, cfg: FileTransferConfig) -> Self {
        Job {
            label: label.into(),
            spec: JobSpec::Transfer(Box::new(cfg)),
        }
    }

    /// An arbitrary-computation job. Like every job it runs isolated:
    /// if `f` panics, the batch records a [`JobError::Panicked`] at this
    /// job's index and every other job still completes.
    pub fn custom(
        label: impl Into<String>,
        f: impl Fn() -> JobReport + Send + Sync + 'static,
    ) -> Self {
        Job {
            label: label.into(),
            spec: JobSpec::Custom(CustomJob(Arc::new(f))),
        }
    }

    /// Reseed the job's stochastic components (link loss processes) from
    /// one job-level seed, deriving independent per-link streams. Custom
    /// jobs own their randomness and are left untouched.
    pub fn reseed(&mut self, seed: u64) {
        match &mut self.spec {
            JobSpec::Session(cfg) => {
                cfg.wifi.seed = derive_seed(seed, 0);
                cfg.cell.seed = derive_seed(seed, 1);
            }
            JobSpec::Transfer(cfg) => {
                cfg.wifi.seed = derive_seed(seed, 0);
                cfg.cell.seed = derive_seed(seed, 1);
            }
            JobSpec::Custom(_) => {}
        }
    }
}

/// The report matching a [`JobSpec`].
#[derive(Clone, Debug)]
pub enum JobReport {
    /// From a session job.
    Session(Box<SessionReport>),
    /// From a transfer job.
    Transfer(FileTransferReport),
    /// An opaque JSON value from a custom job whose natural report type
    /// lives above this crate (e.g. a fleet replica's summary).
    Value(Box<mpdash_results::Json>),
}

impl JobReport {
    /// The report flavor, for mismatch diagnostics.
    fn kind(&self) -> &'static str {
        match self {
            JobReport::Session(_) => "session",
            JobReport::Transfer(_) => "transfer",
            JobReport::Value(_) => "value",
        }
    }

    /// The session report, or a typed mismatch error when the job
    /// produced a transfer report.
    pub fn session(&self) -> Result<&SessionReport, JobError> {
        match self {
            JobReport::Session(r) => Ok(r),
            other => Err(JobError::Mismatch {
                expected: "session",
                got: other.kind(),
            }),
        }
    }

    /// The transfer report, or a typed mismatch error when the job
    /// produced a session report.
    pub fn transfer(&self) -> Result<&FileTransferReport, JobError> {
        match self {
            JobReport::Transfer(r) => Ok(r),
            other => Err(JobError::Mismatch {
                expected: "transfer",
                got: other.kind(),
            }),
        }
    }

    /// The opaque JSON value, or a typed mismatch error when the job
    /// produced a session or transfer report.
    pub fn value(&self) -> Result<&mpdash_results::Json, JobError> {
        match self {
            JobReport::Value(v) => Ok(v),
            other => Err(JobError::Mismatch {
                expected: "value",
                got: other.kind(),
            }),
        }
    }
}

/// Why a batch job produced no usable report.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JobError {
    /// The job panicked; the batch kept running and recorded the panic
    /// message at the job's index.
    Panicked {
        /// The panic payload, when it was a string (the common case).
        message: String,
    },
    /// The caller asked for one report flavor but the job produced the
    /// other (e.g. [`JobReport::session`] on a transfer job).
    Mismatch {
        /// The flavor the accessor wanted.
        expected: &'static str,
        /// The flavor the job actually produced.
        got: &'static str,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Panicked { message } => write!(f, "job panicked: {message}"),
            JobError::Mismatch { expected, got } => {
                write!(
                    f,
                    "expected a {expected} report, job produced a {got} report"
                )
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Wall-clock and simulator-load profile of one batch job.
///
/// Strictly observational: `wall` depends on the machine and worker
/// contention and MUST never flow into artifacts (the report JSON writers
/// don't know this type exists). The event-queue numbers are themselves
/// deterministic but ride here, out of band, for the same reason.
#[derive(Clone, Copy, Debug, Default)]
pub struct JobProfile {
    /// Wall-clock time the job spent on its worker thread.
    pub wall: std::time::Duration,
    /// Live events popped from the simulator queue.
    pub events_popped: u64,
    /// Peak simulator queue depth.
    pub peak_queue_depth: usize,
}

/// One completed job: its label and report (or the error that replaced
/// it), at the same index the job occupied in the input list.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// The job's label.
    pub label: String,
    /// The job's report, or why there is none.
    pub report: Result<JobReport, JobError>,
    /// Execution profile (`None` when the job panicked).
    pub profile: Option<JobProfile>,
}

impl BatchResult {
    /// The session report; errors when the job panicked or produced a
    /// transfer report.
    pub fn session(&self) -> Result<&SessionReport, JobError> {
        match &self.report {
            Ok(r) => r.session(),
            Err(e) => Err(e.clone()),
        }
    }

    /// The transfer report; errors when the job panicked or produced a
    /// session report.
    pub fn transfer(&self) -> Result<&FileTransferReport, JobError> {
        match &self.report {
            Ok(r) => r.transfer(),
            Err(e) => Err(e.clone()),
        }
    }

    /// The opaque JSON value; errors when the job panicked or produced
    /// another report flavor.
    pub fn value(&self) -> Result<&mpdash_results::Json, JobError> {
        match &self.report {
            Ok(r) => r.value(),
            Err(e) => Err(e.clone()),
        }
    }
}

/// Run `jobs` on the default worker count (`MPDASH_WORKERS` env var, else
/// available parallelism), preserving input order.
pub fn run_batch(jobs: Vec<Job>) -> Vec<BatchResult> {
    run_batch_with(jobs, default_workers())
}

fn run_spec(spec: &JobSpec) -> JobReport {
    match spec {
        JobSpec::Session(cfg) => {
            JobReport::Session(Box::new(StreamingSession::run((**cfg).clone())))
        }
        JobSpec::Transfer(cfg) => JobReport::Transfer(FileTransfer::run((**cfg).clone())),
        JobSpec::Custom(f) => (f.0)(),
    }
}

fn queue_stats(report: &JobReport) -> (u64, usize) {
    match report {
        JobReport::Session(r) => (r.sim_profile.events_popped, r.sim_profile.peak_queue_depth),
        JobReport::Transfer(r) => (r.sim_profile.events_popped, r.sim_profile.peak_queue_depth),
        // Opaque values carry no queue profile.
        JobReport::Value(_) => (0, 0),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `jobs` on exactly `workers` threads, preserving input order.
///
/// Output is independent of `workers`: each job is a pure function of its
/// config and results are collected by input index.
///
/// Jobs are **panic-isolated**: a panicking job becomes a
/// [`JobError::Panicked`] in its slot and every other job still runs —
/// one diverging corner of a 396-session sweep costs one cell, not the
/// fleet. (The standard panic hook still prints to stderr; set your own
/// hook to silence expected panics.)
pub fn run_batch_with(jobs: Vec<Job>, workers: usize) -> Vec<BatchResult> {
    par_map(jobs, workers, |job| {
        // AssertUnwindSafe: the closure touches only this job's spec
        // (read-only) and each run builds its state from scratch, so a
        // unwound job leaves nothing half-mutated behind.
        let start = std::time::Instant::now();
        let report = catch_unwind(AssertUnwindSafe(|| run_spec(&job.spec))).map_err(|p| {
            JobError::Panicked {
                message: panic_message(p.as_ref()),
            }
        });
        let wall = start.elapsed();
        let profile = report.as_ref().ok().map(|r| {
            let (events_popped, peak_queue_depth) = queue_stats(r);
            JobProfile {
                wall,
                events_popped,
                peak_queue_depth,
            }
        });
        BatchResult {
            label: job.label.clone(),
            report,
            profile,
        }
    })
}

/// Run plain session configs (the common experiment case), preserving
/// order, on the default worker count.
pub fn run_sessions(configs: Vec<SessionConfig>) -> Vec<SessionReport> {
    par_map(configs, default_workers(), |cfg| {
        StreamingSession::run(cfg.clone())
    })
}

/// Run file-transfer configs, preserving order, on the default worker
/// count.
pub fn run_transfers(configs: Vec<FileTransferConfig>) -> Vec<FileTransferReport> {
    par_map(configs, default_workers(), |cfg| {
        FileTransfer::run(cfg.clone())
    })
}

/// Give every job an independent derived seed: job `i` gets
/// `derive_seed(base, i)`. Use when a sweep wants per-job randomness
/// without hand-numbering seed streams.
pub fn seed_jobs(base: u64, jobs: &mut [Job]) {
    for (i, job) in jobs.iter_mut().enumerate() {
        job.reseed(derive_seed(base, i as u64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransportMode;
    use mpdash_dash::abr::AbrKind;
    use mpdash_dash::video::Video;
    use mpdash_sim::SimDuration;

    fn tiny_cfg(wifi_mbps: f64) -> SessionConfig {
        SessionConfig::controlled_mbps(wifi_mbps, 2.0, AbrKind::Festive, TransportMode::Vanilla)
            .with_video(Video::new(
                "tiny",
                &[0.5, 1.0],
                SimDuration::from_secs(2),
                4,
            ))
    }

    #[test]
    fn batch_preserves_order_and_labels() {
        let jobs: Vec<Job> = (0..6)
            .map(|i| Job::session(format!("job{i}"), tiny_cfg(2.0 + i as f64)))
            .collect();
        let out = run_batch_with(jobs, 3);
        assert_eq!(out.len(), 6);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.label, format!("job{i}"));
            assert!(r.session().expect("session job").qoe_all.chunks > 0);
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let mk = || {
            (0..5)
                .map(|i| Job::session(format!("j{i}"), tiny_cfg(1.5 + i as f64)))
                .collect::<Vec<_>>()
        };
        let seq = run_batch_with(mk(), 1);
        let par = run_batch_with(mk(), 4);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.label, b.label);
            let (a, b) = (a.session().unwrap(), b.session().unwrap());
            assert_eq!(a.summary_json().to_pretty(), b.summary_json().to_pretty());
        }
    }

    #[test]
    fn mixed_batch_dispatches_by_spec() {
        let jobs = vec![
            Job::session("s", tiny_cfg(3.0)),
            Job::transfer(
                "t",
                FileTransferConfig::testbed(3.8, 3.0, TransportMode::Vanilla).with_size(200_000),
            ),
        ];
        let out = run_batch_with(jobs, 2);
        assert!(matches!(out[0].report, Ok(JobReport::Session(_))));
        assert!(matches!(out[1].report, Ok(JobReport::Transfer(_))));
        assert!(out[1].transfer().unwrap().wifi_bytes > 0);
    }

    #[test]
    fn accessor_mismatch_is_a_typed_error_not_a_panic() {
        let out = run_batch_with(vec![Job::session("s", tiny_cfg(3.0))], 1);
        let err = out[0].transfer().unwrap_err();
        assert_eq!(
            err,
            JobError::Mismatch {
                expected: "transfer",
                got: "session"
            }
        );
        assert_eq!(
            err.to_string(),
            "expected a transfer report, job produced a session report"
        );
    }

    #[test]
    fn panicking_job_is_isolated_and_order_preserved() {
        // Silence the default hook so the expected panic does not spam
        // the test output; restore it afterwards.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let jobs = vec![
            Job::session("ok0", tiny_cfg(3.0)),
            Job::custom("boom", || panic!("deliberate fault-injection panic")),
            Job::session("ok1", tiny_cfg(2.5)),
        ];
        let out = run_batch_with(jobs, 3);
        std::panic::set_hook(prev);

        assert_eq!(out.len(), 3);
        assert_eq!(out[0].label, "ok0");
        assert_eq!(out[1].label, "boom");
        assert_eq!(out[2].label, "ok1");
        assert!(out[0].session().is_ok(), "jobs before the panic survive");
        assert!(out[2].session().is_ok(), "jobs after the panic survive");
        assert!(out[1].profile.is_none(), "panicked jobs have no profile");
        match out[1].session() {
            Err(JobError::Panicked { message }) => {
                assert!(
                    message.contains("deliberate fault-injection panic"),
                    "payload surfaced: {message}"
                );
            }
            other => panic!("expected a Panicked error, got {other:?}"),
        }
    }

    #[test]
    fn profiles_ride_along_outside_the_report() {
        let out = run_batch_with(vec![Job::session("s", tiny_cfg(3.0))], 1);
        let p = out[0].profile.expect("successful job has a profile");
        assert!(p.events_popped > 0, "popped {}", p.events_popped);
        assert!(p.peak_queue_depth > 0, "peak {}", p.peak_queue_depth);
        // The queue stats agree with the report's own sim profile.
        let r = out[0].session().unwrap();
        assert_eq!(p.events_popped, r.sim_profile.events_popped);
        assert_eq!(p.peak_queue_depth, r.sim_profile.peak_queue_depth);
        // And none of it reaches the artifact JSON.
        let json = r.summary_json().to_pretty();
        assert!(!json.contains("events_popped"), "profile leaked into JSON");
    }

    #[test]
    fn custom_job_returns_its_report() {
        let cfg = tiny_cfg(3.0);
        let jobs = vec![Job::custom("custom", move || {
            JobReport::Session(Box::new(crate::streaming::StreamingSession::run(
                cfg.clone(),
            )))
        })];
        let out = run_batch_with(jobs, 1);
        assert!(out[0].session().unwrap().qoe_all.chunks > 0);
    }

    #[test]
    fn seed_jobs_gives_distinct_seeds() {
        let mut jobs: Vec<Job> = (0..3)
            .map(|i| Job::session(format!("{i}"), tiny_cfg(2.0)))
            .collect();
        seed_jobs(99, &mut jobs);
        let seeds: Vec<u64> = jobs
            .iter()
            .map(|j| match &j.spec {
                JobSpec::Session(c) => c.wifi.seed,
                JobSpec::Transfer(c) => c.wifi.seed,
                JobSpec::Custom(_) => unreachable!("only session jobs here"),
            })
            .collect();
        assert_ne!(seeds[0], seeds[1]);
        assert_ne!(seeds[1], seeds[2]);
        // Re-deriving is stable.
        let mut again: Vec<Job> = (0..3)
            .map(|i| Job::session(format!("{i}"), tiny_cfg(2.0)))
            .collect();
        seed_jobs(99, &mut again);
        match (&jobs[0].spec, &again[0].spec) {
            (JobSpec::Session(a), JobSpec::Session(b)) => {
                assert_eq!(a.wifi.seed, b.wifi.seed);
                assert_ne!(a.wifi.seed, a.cell.seed);
            }
            _ => unreachable!(),
        }
    }
}
