//! Session configuration: which network, which player, which transport
//! policy.

use mpdash_core::predict::PredictorKind;
use mpdash_dash::abr::AbrKind;
use mpdash_dash::adapter::{AdapterConfig, DeadlineMode};
use mpdash_dash::video::Video;
use mpdash_energy::DeviceProfile;
use mpdash_http::{LifecyclePolicy, OriginPoolConfig, ServerFaultScript, SharedSegmentCache};
use mpdash_link::{BandwidthProfile, FaultScript, LinkConfig, TokenBucket};
use mpdash_mptcp::{CcKind, SchedulerSpec};
use mpdash_obs::{TelemetrySpec, Tracer};
use mpdash_sim::{Rate, SimDuration};
use mpdash_trace::field::Location;

/// Which interface the user prefers (§3.2: "Our current prototype
/// supports two policies … preferring WiFi over cellular, and preferring
/// cellular over WiFi"; the latter suits users in motion). The two are
/// symmetric: the preferred path runs at full rate and the other is
/// deadline-gated.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PathPreference {
    /// Prefer WiFi; gate cellular (the paper's primary policy).
    #[default]
    WifiFirst,
    /// Prefer cellular; gate WiFi (e.g. while driving past APs).
    CellularFirst,
}

impl PathPreference {
    /// Per-path unit costs `(wifi, cell)` for the scheduler.
    pub fn costs(self) -> [f64; 2] {
        match self {
            PathPreference::WifiFirst => [0.0, 1.0],
            PathPreference::CellularFirst => [1.0, 0.0],
        }
    }
}

/// The transport policy under test — the paper's comparison axes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TransportMode {
    /// Vanilla MPTCP: every subflow always on (the paper's baseline).
    Vanilla,
    /// Single-path WiFi (the Figure 11 bottom row).
    WifiOnly,
    /// Vanilla MPTCP with the cellular path throttled by a token bucket —
    /// the §7.3.1 alternative MP-DASH is compared against.
    Throttled {
        /// Token-bucket rate in kbps (the paper tries 200/700/1000).
        kbps: u64,
    },
    /// MP-DASH: the deadline-aware scheduler plus the video adapter.
    MpDash {
        /// How chunk deadlines are derived (§5.1).
        deadline: DeadlineMode,
        /// Algorithm 1's α.
        alpha: f64,
    },
}

impl TransportMode {
    /// MP-DASH with rate-based deadlines, α = 1 (the paper's default).
    pub fn mpdash_rate_based() -> Self {
        TransportMode::MpDash {
            deadline: DeadlineMode::Rate,
            alpha: 1.0,
        }
    }

    /// MP-DASH with duration-based deadlines, α = 1.
    pub fn mpdash_duration_based() -> Self {
        TransportMode::MpDash {
            deadline: DeadlineMode::Duration,
            alpha: 1.0,
        }
    }

    /// Short label for result tables.
    pub fn label(&self) -> String {
        match self {
            TransportMode::Vanilla => "Baseline".into(),
            TransportMode::WifiOnly => "WiFi-only".into(),
            TransportMode::Throttled { kbps } => format!("Throttle{kbps}k"),
            TransportMode::MpDash { deadline, .. } => deadline.name().into(),
        }
    }

    /// Whether this mode runs the MP-DASH scheduler.
    pub fn is_mpdash(&self) -> bool {
        matches!(self, TransportMode::MpDash { .. })
    }
}

/// Full configuration of one streaming session.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// The video to stream.
    pub video: Video,
    /// WiFi data link.
    pub wifi: LinkConfig,
    /// Cellular data link.
    pub cell: LinkConfig,
    /// Rate-adaptation algorithm.
    pub abr: AbrKind,
    /// Transport policy.
    pub mode: TransportMode,
    /// Player buffer capacity.
    pub buffer_capacity: SimDuration,
    /// MPTCP packet scheduler.
    pub scheduler: SchedulerSpec,
    /// Per-subflow congestion control.
    pub cc: CcKind,
    /// Device for energy replay.
    pub device: DeviceProfile,
    /// Pre-play throughput priors `(wifi, cell)` seeding the estimators
    /// (the paper probes before playback, §7.3.3).
    pub priors: (Rate, Rate),
    /// Throughput predictor driving Algorithm 1 (ablation knob; the
    /// paper's choice is Holt-Winters, §6).
    pub predictor: PredictorKind,
    /// Enable-side debounce of the deadline scheduler in progress checks
    /// (see `SchedulerParams::enable_debounce`).
    pub enable_debounce: u32,
    /// Holt-Winters sampling-slot width (ablation knob).
    pub sample_slot: SimDuration,
    /// Override the video adapter's Φ/Ω tunables (ablation knob; `None`
    /// keeps the paper's defaults).
    pub adapter_config: Option<AdapterConfig>,
    /// Which interface the user prefers (§3.2).
    pub preference: PathPreference,
    /// Scripted server-side misbehaviour (5xx bursts, stalled bodies,
    /// slow first byte). Empty by default — a healthy server.
    pub server_faults: ServerFaultScript,
    /// Request-lifecycle policy: stall/deadline timeouts, abandonment
    /// with byte-range resume, seeded retries. Defaults to the
    /// wait-forever baseline (the pre-lifecycle behaviour).
    pub lifecycle: LifecyclePolicy,
    /// Multi-origin serving pool: per-origin fault scripts, RTT
    /// penalties, circuit breakers, and the hedging policy. `None`
    /// (default) keeps the legacy single implicit origin driven by
    /// `server_faults`.
    pub origins: Option<OriginPoolConfig>,
    /// Shared segment cache in front of the origins; hits are served as
    /// cheap edge fetches. `None` (default) disables the cache tier.
    /// Fleet runs pass one handle to every client.
    pub cache: Option<SharedSegmentCache>,
    /// Structured-trace sink for the run. Disabled by default; when left
    /// disabled, the session falls back to the process-wide
    /// `MPDASH_TRACE` environment tracer. Strictly observe-only: the
    /// same config with any tracer produces byte-identical reports.
    pub tracer: Tracer,
    /// Epoch telemetry: roll session signals into fixed virtual-time
    /// epochs (see `mpdash_obs::EpochSeries`). `None` (default) falls
    /// back to the process-wide `MPDASH_TELEMETRY` environment spec.
    /// Strictly observe-only: the same config with telemetry on or off
    /// produces byte-identical reports and artifacts.
    pub telemetry: Option<TelemetrySpec>,
    /// Virtual time at which the session issues its first request
    /// (staggered fleet starts). Zero for the standalone experiments.
    /// QoE clocks (startup delay, session duration) measure from this
    /// origin, not from the simulation epoch.
    pub start_offset: SimDuration,
    /// Viewing-duration cap: once this much virtual time has elapsed
    /// since the session's origin, no further chunks are requested —
    /// the viewer closes the tab and the session finalizes a clean
    /// partial report (churning fleets draw this per client). `None`
    /// (default) watches the whole video.
    pub max_watch: Option<SimDuration>,
}

impl SessionConfig {
    /// The controlled-experiment setup of §7.1/§7.3.2: testbed RTTs
    /// (50 ms WiFi, 55 ms LTE), Big Buck Bunny, 40 s player buffer.
    pub fn controlled(
        profiles: (BandwidthProfile, BandwidthProfile),
        abr: AbrKind,
        mode: TransportMode,
    ) -> Self {
        let horizon = SimDuration::from_secs(120);
        let priors = (profiles.0.mean_rate(horizon), profiles.1.mean_rate(horizon));
        let (wifi, cell) = mpdash_trace::table1::testbed_links(profiles.0, profiles.1);
        SessionConfig {
            video: Video::big_buck_bunny(),
            wifi,
            cell,
            abr,
            mode,
            buffer_capacity: SimDuration::from_secs(40),
            scheduler: SchedulerSpec::MinRtt,
            cc: CcKind::Reno,
            device: DeviceProfile::galaxy_note(),
            priors,
            predictor: PredictorKind::control_default(),
            enable_debounce: 4,
            sample_slot: SimDuration::from_millis(250),
            adapter_config: None,
            preference: PathPreference::WifiFirst,
            server_faults: ServerFaultScript::new(),
            lifecycle: LifecyclePolicy::wait_forever(),
            origins: None,
            cache: None,
            tracer: Tracer::disabled(),
            telemetry: None,
            start_offset: SimDuration::ZERO,
            max_watch: None,
        }
    }

    /// [`SessionConfig::controlled`] with flat constant-rate paths — the
    /// shortest way to a valid config for tests and batch-runner demos.
    pub fn controlled_mbps(
        wifi_mbps: f64,
        cell_mbps: f64,
        abr: AbrKind,
        mode: TransportMode,
    ) -> Self {
        SessionConfig::controlled(
            (
                BandwidthProfile::constant_mbps(wifi_mbps),
                BandwidthProfile::constant_mbps(cell_mbps),
            ),
            abr,
            mode,
        )
    }

    /// A field-study session at one of the 33 corpus locations.
    pub fn at_location(loc: &Location, abr: AbrKind, mode: TransportMode) -> Self {
        let (wifi, cell) = loc.links();
        SessionConfig {
            video: Video::big_buck_bunny(),
            wifi,
            cell,
            abr,
            mode,
            buffer_capacity: SimDuration::from_secs(40),
            scheduler: SchedulerSpec::MinRtt,
            cc: CcKind::Reno,
            device: DeviceProfile::galaxy_note(),
            priors: (
                Rate::from_mbps_f64(loc.wifi_mbps),
                Rate::from_mbps_f64(loc.lte_mbps),
            ),
            predictor: PredictorKind::control_default(),
            enable_debounce: 4,
            sample_slot: SimDuration::from_millis(250),
            adapter_config: None,
            preference: PathPreference::WifiFirst,
            server_faults: ServerFaultScript::new(),
            lifecycle: LifecyclePolicy::wait_forever(),
            origins: None,
            cache: None,
            tracer: Tracer::disabled(),
            telemetry: None,
            start_offset: SimDuration::ZERO,
            max_watch: None,
        }
    }

    /// Same config with a different video.
    pub fn with_video(mut self, video: Video) -> Self {
        self.video = video;
        self
    }

    /// Same config with a different player buffer capacity.
    pub fn with_buffer_capacity(mut self, capacity: SimDuration) -> Self {
        self.buffer_capacity = capacity;
        self
    }

    /// Same config with a different MPTCP packet scheduler.
    pub fn with_scheduler(mut self, s: SchedulerSpec) -> Self {
        self.scheduler = s;
        self
    }

    /// Same config with a different congestion controller.
    pub fn with_cc(mut self, cc: CcKind) -> Self {
        self.cc = cc;
        self
    }

    /// Same config with a different energy device.
    pub fn with_device(mut self, d: DeviceProfile) -> Self {
        self.device = d;
        self
    }

    /// Same config with a different throughput predictor (ablation).
    pub fn with_predictor(mut self, p: PredictorKind) -> Self {
        self.predictor = p;
        self
    }

    /// Same config with a different enable-side debounce (ablation).
    pub fn with_debounce(mut self, checks: u32) -> Self {
        self.enable_debounce = checks.max(1);
        self
    }

    /// Same config with a different sampling-slot width (ablation).
    pub fn with_sample_slot(mut self, slot: SimDuration) -> Self {
        self.sample_slot = slot;
        self
    }

    /// Same config with explicit adapter Φ/Ω tunables (ablation).
    pub fn with_adapter_config(mut self, cfg: AdapterConfig) -> Self {
        self.adapter_config = Some(cfg);
        self
    }

    /// Same config with the opposite interface preference (§3.2).
    pub fn with_preference(mut self, p: PathPreference) -> Self {
        self.preference = p;
        self
    }

    /// Same config with a fault script injected on the WiFi link
    /// (robustness runs: burst loss, RTT storms, rate collapse,
    /// disassociation).
    pub fn with_wifi_faults(mut self, faults: FaultScript) -> Self {
        self.wifi = self.wifi.with_faults(faults);
        self
    }

    /// Same config with a fault script injected on the cellular link.
    pub fn with_cell_faults(mut self, faults: FaultScript) -> Self {
        self.cell = self.cell.with_faults(faults);
        self
    }

    /// Same config with a server-side fault script (robustness runs:
    /// 5xx bursts, stalled response bodies, slow first byte).
    pub fn with_server_faults(mut self, faults: ServerFaultScript) -> Self {
        self.server_faults = faults;
        self
    }

    /// Same config with a request-lifecycle policy.
    pub fn with_lifecycle(mut self, policy: LifecyclePolicy) -> Self {
        self.lifecycle = policy;
        self
    }

    /// Same config with a multi-origin pool (robustness runs: origin
    /// blackholes, circuit-breaking failover, hedged fetches).
    pub fn with_origins(mut self, pool: OriginPoolConfig) -> Self {
        self.origins = Some(pool);
        self
    }

    /// Same config with a shared segment cache in front of the origins.
    pub fn with_cache(mut self, cache: SharedSegmentCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Same config with a structured-trace sink attached (observe-only;
    /// see the `tracer` field).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Same config with epoch telemetry enabled (observe-only; see the
    /// `telemetry` field).
    pub fn with_telemetry(mut self, spec: TelemetrySpec) -> Self {
        self.telemetry = Some(spec);
        self
    }

    /// Same config with a delayed first request (staggered fleet start).
    pub fn with_start_offset(mut self, offset: SimDuration) -> Self {
        self.start_offset = offset;
        self
    }

    /// Same config with a bounded viewing duration: the session departs
    /// (stops requesting chunks) once it has watched this long, even if
    /// the video has chapters left. Fleet churn draws these per client.
    pub fn with_max_watch(mut self, limit: SimDuration) -> Self {
        self.max_watch = Some(limit);
        self
    }

    /// Apply the transport mode's link-level effects (cellular throttle).
    pub(crate) fn effective_cell_link(&self) -> LinkConfig {
        match self.mode {
            TransportMode::Throttled { kbps } => self
                .cell
                .clone()
                .with_throttle(TokenBucket::new(Rate::from_kbps(kbps), 3000)),
            _ => self.cell.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdash_trace::table1;

    #[test]
    fn labels() {
        assert_eq!(TransportMode::Vanilla.label(), "Baseline");
        assert_eq!(
            TransportMode::Throttled { kbps: 700 }.label(),
            "Throttle700k"
        );
        assert_eq!(TransportMode::mpdash_rate_based().label(), "Rate");
        assert_eq!(TransportMode::mpdash_duration_based().label(), "Duration");
        assert!(TransportMode::mpdash_rate_based().is_mpdash());
        assert!(!TransportMode::WifiOnly.is_mpdash());
    }

    #[test]
    fn controlled_setup_uses_testbed_rtts_and_priors() {
        let cfg = SessionConfig::controlled(
            table1::synthetic_profile_pair(3.8, 3.0, 0.1, 1),
            AbrKind::Festive,
            TransportMode::Vanilla,
        );
        assert_eq!(cfg.wifi.delay * 2, SimDuration::from_millis(50));
        let (pw, pc) = cfg.priors;
        assert!((pw.as_mbps_f64() - 3.8).abs() < 0.4);
        assert!((pc.as_mbps_f64() - 3.0).abs() < 0.4);
    }

    #[test]
    fn throttle_mode_installs_bucket() {
        let mut cfg = SessionConfig::controlled(
            table1::synthetic_profile_pair(3.8, 3.0, 0.1, 1),
            AbrKind::Gpac,
            TransportMode::Throttled { kbps: 700 },
        );
        assert!(cfg.effective_cell_link().throttle.is_some());
        cfg.mode = TransportMode::Vanilla;
        assert!(cfg.effective_cell_link().throttle.is_none());
    }
}
