//! [`FileTransfer`]: the §7.2 single-file deadline download.
//!
//! The paper evaluates the MP-DASH scheduler in isolation before adding
//! video: a client fetches one blob (5 MB in the motivating setup) with a
//! hard deadline over WiFi + LTE, and the metrics are download time,
//! cellular bytes, and radio energy (Figure 4). This driver reproduces
//! that: one `send_app` worth of bytes, Algorithm 1 toggling the cellular
//! subflow from a 50 ms progress tick, energy replay at the end.
//!
//! It is also the general-purpose face of MP-DASH the paper's §8 points
//! at (music prefetch, map tiles, deferred offload): any delay-tolerant
//! transfer with a deadline.

use crate::config::TransportMode;
use mpdash_core::deadline::SchedulerParams;
use mpdash_core::MpDashControl;
use mpdash_energy::{session_energy, DeviceProfile, SessionEnergy};
use mpdash_link::{LinkConfig, PathId, TokenBucket};
use mpdash_mptcp::{
    CcKind, MptcpConfig, MptcpSim, PathConfig, PathMask, SchedulerSpec, StepOutcome,
};
use mpdash_sim::{Rate, SimDuration, SimTime};

const TICK: SimDuration = SimDuration::from_millis(50);
/// Holt-Winters sampling slot (see the streaming driver for rationale).
const SAMPLE_SLOT: SimDuration = SimDuration::from_millis(250);

const TICK_ID: u64 = u64::MAX - 11;

/// Configuration of one deadline transfer.
#[derive(Clone, Debug)]
pub struct FileTransferConfig {
    /// WiFi link.
    pub wifi: LinkConfig,
    /// Cellular link.
    pub cell: LinkConfig,
    /// Transfer size in bytes.
    pub size: u64,
    /// Delivery deadline (window from t = 0).
    pub deadline: SimDuration,
    /// Transport policy (MP-DASH α lives inside
    /// [`TransportMode::MpDash`]; its deadline mode is ignored here —
    /// file transfers have an explicit window).
    pub mode: TransportMode,
    /// MPTCP packet scheduler.
    pub scheduler: SchedulerSpec,
    /// Subflow congestion control.
    pub cc: CcKind,
    /// Device for energy replay.
    pub device: DeviceProfile,
    /// Estimator priors `(wifi, cell)`.
    pub priors: (Rate, Rate),
}

impl FileTransferConfig {
    /// The §7.2 testbed: WiFi/LTE at the given Mbps (50/55 ms RTT),
    /// 5 MB default size.
    pub fn testbed(wifi_mbps: f64, cell_mbps: f64, mode: TransportMode) -> Self {
        FileTransferConfig {
            wifi: LinkConfig::constant(wifi_mbps, SimDuration::from_millis(25)),
            cell: LinkConfig::constant(cell_mbps, SimDuration::from_micros(27_500)),
            size: 5_000_000,
            deadline: SimDuration::from_secs(10),
            mode,
            scheduler: SchedulerSpec::MinRtt,
            cc: CcKind::Reno,
            device: DeviceProfile::galaxy_note(),
            priors: (
                Rate::from_mbps_f64(wifi_mbps),
                Rate::from_mbps_f64(cell_mbps),
            ),
        }
    }

    /// Same config with another deadline.
    pub fn with_deadline(mut self, d: SimDuration) -> Self {
        self.deadline = d;
        self
    }

    /// Same config with another size.
    pub fn with_size(mut self, bytes: u64) -> Self {
        self.size = bytes;
        self
    }

    /// Same config with another packet scheduler.
    pub fn with_scheduler(mut self, s: SchedulerSpec) -> Self {
        self.scheduler = s;
        self
    }
}

/// Results of one deadline transfer.
#[derive(Clone, Debug)]
pub struct FileTransferReport {
    /// Completion time.
    pub duration: SimDuration,
    /// Bytes over WiFi (retransmissions included).
    pub wifi_bytes: u64,
    /// Bytes over cellular.
    pub cell_bytes: u64,
    /// Whether the deadline was missed.
    pub missed_deadline: bool,
    /// Radio energy (horizon = completion + one LTE tail, so tail costs
    /// are comparable across modes).
    pub energy: SessionEnergy,
    /// Cellular on/off transitions by the scheduler.
    pub toggles: u64,
    /// Simulator profile (events popped / peak queue depth); deterministic,
    /// never serialized into artifacts.
    pub sim_profile: crate::report::SimProfile,
}

impl FileTransferReport {
    /// Fraction of bytes on cellular.
    pub fn cell_fraction(&self) -> f64 {
        let total = self.wifi_bytes + self.cell_bytes;
        if total == 0 {
            0.0
        } else {
            self.cell_bytes as f64 / total as f64
        }
    }
}

/// The deadline-transfer driver. See module docs.
pub struct FileTransfer;

impl FileTransfer {
    /// Run one transfer to completion.
    pub fn run(cfg: FileTransferConfig) -> FileTransferReport {
        let cell_link = match cfg.mode {
            TransportMode::Throttled { kbps } => cfg
                .cell
                .clone()
                .with_throttle(TokenBucket::new(Rate::from_kbps(kbps), 3000)),
            _ => cfg.cell.clone(),
        };
        let mut sim = MptcpSim::new(MptcpConfig {
            paths: vec![
                PathConfig::symmetric(cfg.wifi.clone()),
                PathConfig::symmetric(cell_link),
            ],
            scheduler: cfg.scheduler,
            cc: cfg.cc,
        });
        sim.set_tracer(mpdash_obs::Tracer::disabled().or_env());
        let mut control = match cfg.mode {
            TransportMode::MpDash { alpha, .. } => {
                let mut c = MpDashControl::new(
                    vec![0.0, 1.0],
                    vec![cfg.priors.0, cfg.priors.1],
                    SchedulerParams::with_alpha(alpha).with_debounce(4),
                    SAMPLE_SLOT,
                );
                let enabled = c
                    .mp_dash_enable(SimTime::ZERO, cfg.size, cfg.deadline)
                    .to_vec();
                apply_initial(&mut sim, &enabled);
                Some(c)
            }
            TransportMode::WifiOnly => {
                sim.set_initial_mask(PathMask::only(PathId::WIFI));
                None
            }
            _ => None,
        };

        sim.send_app(cfg.size);
        if control.is_some() {
            sim.schedule_app_timer(SimTime::ZERO + TICK, TICK_ID);
        }

        let mut record_cursor = 0usize;
        let mut done_at = SimTime::ZERO;
        while sim.delivered() < cfg.size {
            let Some((t, outcome)) = sim.step() else {
                panic!("transfer stalled at {}/{} bytes", sim.delivered(), cfg.size);
            };
            done_at = t;
            let tick = matches!(outcome, StepOutcome::AppTimer { id: TICK_ID });
            if let Some(c) = control.as_mut() {
                let records = sim.records();
                for r in &records[record_cursor..] {
                    c.on_bytes(r.path.index(), r.t, r.len);
                }
                record_cursor = records.len();
                let busy = [
                    sim.path_in_flight(PathId::WIFI) > 0,
                    sim.path_in_flight(PathId::CELLULAR) > 0,
                ];
                if let Some(enabled) = c.on_progress(t, sim.delivered(), &busy) {
                    apply(&mut sim, &enabled);
                }
                if tick {
                    sim.schedule_app_timer(t + TICK, TICK_ID);
                }
            }
        }

        let duration = done_at.saturating_since(SimTime::ZERO);
        let records = sim.records();
        let wifi_pkts: Vec<(SimTime, u64)> = records
            .iter()
            .filter(|r| r.path == PathId::WIFI)
            .map(|r| (r.t, r.len))
            .collect();
        let cell_pkts: Vec<(SimTime, u64)> = records
            .iter()
            .filter(|r| r.path == PathId::CELLULAR)
            .map(|r| (r.t, r.len))
            .collect();
        let horizon = duration + SimDuration::from_secs(15);
        FileTransferReport {
            duration,
            wifi_bytes: sim.path_bytes(PathId::WIFI),
            cell_bytes: sim.path_bytes(PathId::CELLULAR),
            missed_deadline: duration > cfg.deadline,
            energy: session_energy(&cfg.device, &wifi_pkts, &cell_pkts, horizon),
            toggles: control.as_ref().map(|c| c.stats().toggles).unwrap_or(0),
            sim_profile: crate::report::SimProfile {
                events_popped: sim.events_popped(),
                peak_queue_depth: sim.peak_queue_depth(),
            },
        }
    }
}

fn to_mask(enabled: &[bool]) -> PathMask {
    let mut mask = PathMask::NONE;
    for (i, &e) in enabled.iter().enumerate() {
        if e {
            mask = mask.with(PathId(i as u8));
        }
    }
    mask
}

fn apply(sim: &mut MptcpSim, enabled: &[bool]) {
    sim.set_desired_mask(to_mask(enabled));
}

fn apply_initial(sim: &mut MptcpSim, enabled: &[bool]) {
    sim.set_initial_mask(to_mask(enabled));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's motivating numbers: 5 MB, WiFi 3.8 / LTE 3.0.
    fn base(mode: TransportMode) -> FileTransferConfig {
        FileTransferConfig::testbed(3.8, 3.0, mode)
    }

    #[test]
    fn vanilla_finishes_in_about_six_seconds() {
        let r = FileTransfer::run(base(TransportMode::Vanilla));
        let secs = r.duration.as_secs_f64();
        assert!(secs > 5.0 && secs < 7.5, "took {secs:.2} s (paper: ~6 s)");
        // Roughly proportional split: LTE carries ~40%.
        assert!(
            r.cell_fraction() > 0.3,
            "cell share {:.2}",
            r.cell_fraction()
        );
    }

    #[test]
    fn wifi_only_takes_about_ten_and_a_half_seconds() {
        let r = FileTransfer::run(base(TransportMode::WifiOnly));
        let secs = r.duration.as_secs_f64();
        assert!(
            secs > 10.0 && secs < 12.5,
            "took {secs:.2} s (paper: ~10.5 s)"
        );
        assert_eq!(r.cell_bytes, 0);
    }

    #[test]
    fn mpdash_meets_deadlines_with_deadline_scaled_savings() {
        let base_report = FileTransfer::run(base(TransportMode::Vanilla));
        let mut cells = Vec::new();
        for d in [8u64, 9, 10] {
            let r = FileTransfer::run(
                base(TransportMode::mpdash_rate_based()).with_deadline(SimDuration::from_secs(d)),
            );
            assert!(
                !r.missed_deadline,
                "deadline {d} s missed at {:.2} s",
                r.duration.as_secs_f64()
            );
            assert!(
                r.cell_bytes < base_report.cell_bytes,
                "deadline {d}: {} vs baseline {}",
                r.cell_bytes,
                base_report.cell_bytes
            );
            cells.push(r.cell_bytes);
        }
        // Figure 4: the longer the deadline, the larger the saving.
        assert!(cells[0] > cells[1] && cells[1] > cells[2], "{cells:?}");
        // 10 s deadline: paper reports 68% cellular saving; require >50%.
        let saving = 1.0 - cells[2] as f64 / base_report.cell_bytes as f64;
        assert!(saving > 0.5, "10 s saving {saving:.2}");
    }

    #[test]
    fn round_robin_scheduler_also_benefits() {
        let b = FileTransfer::run(
            base(TransportMode::Vanilla).with_scheduler(SchedulerSpec::RoundRobin),
        );
        let m = FileTransfer::run(
            base(TransportMode::mpdash_rate_based()).with_scheduler(SchedulerSpec::RoundRobin),
        );
        assert!(!m.missed_deadline);
        assert!(m.cell_bytes < b.cell_bytes / 2);
    }

    #[test]
    fn smaller_alpha_uses_more_cellular_but_finishes_earlier() {
        let tight = FileTransfer::run(FileTransferConfig::testbed(
            3.8,
            3.0,
            TransportMode::MpDash {
                deadline: mpdash_dash::adapter::DeadlineMode::Rate,
                alpha: 0.8,
            },
        ));
        let relaxed = FileTransfer::run(base(TransportMode::mpdash_rate_based()));
        assert!(!tight.missed_deadline);
        assert!(
            tight.cell_bytes > relaxed.cell_bytes,
            "α=0.8 {} vs α=1 {}",
            tight.cell_bytes,
            relaxed.cell_bytes
        );
        assert!(tight.duration <= relaxed.duration + SimDuration::from_secs(1));
    }

    #[test]
    fn infeasible_deadline_is_missed_and_reported() {
        let r = FileTransfer::run(
            base(TransportMode::mpdash_rate_based()).with_deadline(SimDuration::from_secs(2)),
        );
        assert!(r.missed_deadline, "5 MB over 6.8 Mbps cannot make 2 s");
        // It still completes (both paths on after the miss).
        assert!(r.wifi_bytes + r.cell_bytes >= 5_000_000);
    }

    #[test]
    fn mpdash_saves_energy_too() {
        let b = FileTransfer::run(base(TransportMode::Vanilla));
        let m = FileTransfer::run(
            base(TransportMode::mpdash_rate_based()).with_deadline(SimDuration::from_secs(10)),
        );
        assert!(
            m.energy.total_j() < b.energy.total_j(),
            "mp {:.1} J vs base {:.1} J",
            m.energy.total_j(),
            b.energy.total_j()
        );
    }
}
