//! End-to-end experiment driver: wires the simulated links, the MPTCP
//! model, HTTP, the DASH player, the MP-DASH control plane, and the
//! energy model into runnable sessions.
//!
//! Two session types cover the paper's evaluation:
//!
//! * [`StreamingSession`] — a full DASH playback (§7.3): ABR choice per
//!   chunk, MP-DASH adapter deciding activation + deadline, the
//!   deadline-aware scheduler toggling the cellular subflow, QoE and
//!   energy accounting.
//! * [`FileTransfer`] — the single-file deadline download of §7.2
//!   (Figure 4): one blob, one deadline, scheduler on or off.
//!
//! Both produce reports carrying everything the benchmark harness needs
//! to regenerate the paper's tables and figures.

pub mod batch;
pub mod config;
pub mod file_transfer;
pub mod report;
pub mod streaming;

pub use batch::{
    run_batch, run_batch_with, run_sessions, run_transfers, seed_jobs, BatchResult, CustomJob, Job,
    JobError, JobProfile, JobReport, JobSpec,
};
pub use config::{PathPreference, SessionConfig, TransportMode};
pub use file_transfer::{FileTransfer, FileTransferConfig, FileTransferReport};
pub use mpdash_core::SchedulerStats;
pub use mpdash_http::{
    BreakerState, CacheStats, LifecyclePolicy, OriginPool, OriginPoolConfig, OriginSpec,
    RetryPolicy, ServerFaultScript, SharedSegmentCache,
};
pub use mpdash_obs::{MetricsSnapshot, NdjsonSink, NullSink, RingSink, TraceEvent, Tracer};
pub use report::{
    ChunkLogEntry, DegradationMetrics, LifecycleStats, OriginStats, SessionReport, SimProfile,
};
pub use streaming::StreamingSession;
