//! Session results: everything the benchmark harness and the analysis
//! tool need to regenerate the paper's tables and figures.

use mpdash_dash::player::PlayerEvent;
use mpdash_dash::qoe::QoeSummary;
use mpdash_energy::SessionEnergy;
use mpdash_mptcp::PktRecord;
use mpdash_sim::{SimDuration, SimTime};

/// One fetched chunk, as logged by the session driver.
#[derive(Clone, Copy, Debug)]
pub struct ChunkLogEntry {
    /// Chunk index.
    pub index: usize,
    /// Quality level fetched.
    pub level: usize,
    /// Body bytes.
    pub size: u64,
    /// Request issue time.
    pub started: SimTime,
    /// Last body byte arrival.
    pub completed: SimTime,
    /// Connection-stream range `[start, end)` of the body (for per-path
    /// attribution).
    pub body_dss: (u64, u64),
    /// The MP-DASH window granted, `None` when the adapter bypassed.
    pub deadline: Option<SimDuration>,
}

/// Everything measured in one streaming session.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// QoE over the steady-state suffix (last 80% of chunks, like §7.3).
    pub qoe: QoeSummary,
    /// QoE over all chunks (the paper notes "very similar results").
    pub qoe_all: QoeSummary,
    /// Payload bytes received over WiFi (retransmissions included).
    pub wifi_bytes: u64,
    /// Payload bytes received over cellular.
    pub cell_bytes: u64,
    /// Radio energy replay on the configured device.
    pub energy: SessionEnergy,
    /// Wall-clock (virtual) end of the session.
    pub duration: SimDuration,
    /// Per-chunk log.
    pub chunks: Vec<ChunkLogEntry>,
    /// Raw packet receive trace.
    pub records: Vec<PktRecord>,
    /// MP-DASH scheduler statistics: `(toggles, missed deadlines,
    /// completed transfers)`; zeros for non-MP-DASH modes.
    pub scheduler_stats: (u64, u64, u64),
    /// The player's event log (the §6 analysis tool's second input).
    pub player_events: Vec<PlayerEvent>,
}

impl SessionReport {
    /// Fraction of bytes that travelled over cellular.
    pub fn cell_fraction(&self) -> f64 {
        let total = self.wifi_bytes + self.cell_bytes;
        if total == 0 {
            0.0
        } else {
            self.cell_bytes as f64 / total as f64
        }
    }

    /// Cellular-byte saving of `self` versus a `baseline` run
    /// (the paper's headline metric; 1.0 = 100% saved).
    pub fn cell_saving_vs(&self, baseline: &SessionReport) -> f64 {
        if baseline.cell_bytes == 0 {
            return 0.0;
        }
        1.0 - self.cell_bytes as f64 / baseline.cell_bytes as f64
    }

    /// Radio-energy saving versus a baseline run.
    pub fn energy_saving_vs(&self, baseline: &SessionReport) -> f64 {
        let base = baseline.energy.total_j();
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - self.energy.total_j() / base
    }
}
