//! Session results: everything the benchmark harness and the analysis
//! tool need to regenerate the paper's tables and figures.

use mpdash_core::SchedulerStats;
use mpdash_dash::player::PlayerEvent;
use mpdash_dash::qoe::{QoeScore, QoeSummary};
use mpdash_energy::SessionEnergy;
use mpdash_http::DssRange;
use mpdash_mptcp::PktRecord;
use mpdash_obs::{EpochSeries, MetricsSnapshot};
use mpdash_results::Json;
use mpdash_sim::{SimDuration, SimTime};

/// Event-loop profile of the simulation that produced a report — how
/// much discrete-event work the run did. Fully deterministic (it counts
/// virtual events, not wall time), but kept out of [`summary_json`]
/// artifacts alongside the raw packet trace: it describes the engine,
/// not the experiment.
///
/// [`summary_json`]: SessionReport::summary_json
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimProfile {
    /// Events popped from the simulator's queue over the whole run.
    pub events_popped: u64,
    /// High-water mark of live (non-cancelled) scheduled events.
    pub peak_queue_depth: usize,
}

/// One fetched chunk, as logged by the session driver.
#[derive(Clone, Copy, Debug)]
pub struct ChunkLogEntry {
    /// Chunk index.
    pub index: usize,
    /// Quality level fetched.
    pub level: usize,
    /// Body bytes.
    pub size: u64,
    /// Request issue time.
    pub started: SimTime,
    /// Last body byte arrival.
    pub completed: SimTime,
    /// Connection-stream range `[start, end)` of the body (for per-path
    /// attribution). For a chunk delivered across several requests
    /// (abandon + byte-range resume), this is the *final* request's
    /// range, so its length can be smaller than `size`.
    pub body_dss: DssRange,
    /// The MP-DASH window granted, `None` when the adapter bypassed.
    pub deadline: Option<SimDuration>,
    /// HTTP requests it took to deliver the chunk (1 = the normal case;
    /// more after retries or abandon/resume cycles).
    pub requests: u32,
}

/// How gracefully the session weathered path faults: the robustness
/// counters the `exp_faults` resilience matrix asserts its invariants
/// over. All zeros in a fault-free run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DegradationMetrics {
    /// MP-DASH scheduler deadline misses (always 0 in non-MP-DASH
    /// modes, which set no deadlines).
    pub deadline_misses: u64,
    /// Chunks whose body rode almost entirely (> 90%) on non-preferred
    /// paths — the signature of cellular bridging a WiFi fault window.
    pub outage_bridged_chunks: u64,
    /// Subflow failure declarations, summed over paths.
    pub subflow_failures: u64,
    /// Subflow re-establishments after failure, summed over paths.
    pub subflow_revivals: u64,
}

/// Request-lifecycle counters: how often the deadline-aware machinery
/// (PR 4) intervened, and what the interventions cost. All zeros under
/// the wait-forever policy on a healthy server.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LifecycleStats {
    /// Stall/deadline/infeasibility timeouts that fired.
    pub timeouts: u64,
    /// Requests abandoned mid-download (cancel sent).
    pub abandoned: u64,
    /// Byte-range resumes issued after an abandonment.
    pub resumed: u64,
    /// Requests re-issued after a server 5xx.
    pub retried: u64,
    /// Bytes delivered for abandoned requests after the abandonment
    /// decision — duplicates of what the resume re-fetched.
    pub wasted_bytes: u64,
}

/// Multi-origin serving counters: how the origin pool, the hedging
/// policy, and the segment cache behaved. All zeros when the session
/// runs without a pool or cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OriginStats {
    /// Requests the pool routed to an origin (initial, retries,
    /// resumes, hedges; cache hits bypass the pool and do not count).
    pub routed: u64,
    /// Resumes or retries that landed on a different origin than the
    /// request they replaced — the circuit-breaking failover in action.
    pub failovers: u64,
    /// Circuit-breaker transitions into Open, summed over origins.
    pub breaker_opens: u64,
    /// Hedge races launched (progress stalled past the hedge quantile
    /// of the deadline budget with a second origin available).
    pub hedges: u64,
    /// Hedge races the primary request won (the cancel was stale).
    pub hedge_wins_primary: u64,
    /// Hedge races the hedge request won (the primary aborted).
    pub hedge_wins_hedge: u64,
    /// Segment-cache hits served as edge fetches by this session.
    pub cache_hits: u64,
    /// Segment-cache misses that fell through to an origin fetch.
    pub cache_misses: u64,
    /// Full segments this session inserted into the cache.
    pub cache_insertions: u64,
}

/// Everything measured in one streaming session.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// QoE over the steady-state suffix (last 80% of chunks, like §7.3).
    pub qoe: QoeSummary,
    /// QoE over all chunks (the paper notes "very similar results").
    pub qoe_all: QoeSummary,
    /// Payload bytes received over WiFi (retransmissions included).
    pub wifi_bytes: u64,
    /// Payload bytes received over cellular.
    pub cell_bytes: u64,
    /// Radio energy replay on the configured device.
    pub energy: SessionEnergy,
    /// Wall-clock (virtual) end of the session.
    pub duration: SimDuration,
    /// Per-chunk log.
    pub chunks: Vec<ChunkLogEntry>,
    /// Raw packet receive trace.
    pub records: Vec<PktRecord>,
    /// MP-DASH scheduler statistics; all zeros for non-MP-DASH modes.
    pub scheduler_stats: SchedulerStats,
    /// The player's event log (the §6 analysis tool's second input).
    pub player_events: Vec<PlayerEvent>,
    /// Graceful-degradation counters (deadline misses, outage-bridged
    /// chunks, subflow failovers/revivals).
    pub degradation: DegradationMetrics,
    /// Request-lifecycle counters (timeouts, abandons, resumes,
    /// retries, wasted bytes).
    pub lifecycle: LifecycleStats,
    /// Multi-origin serving counters (routing, breakers, hedges,
    /// cache).
    pub origin: OriginStats,
    /// Named counters/gauges/histograms registered during the run.
    pub metrics: MetricsSnapshot,
    /// Normalized QoE score (rebuffer ratio, bitrate, switch rate,
    /// composite) over the steady-state suffix. Computed from the
    /// player alone, so it is identical whether telemetry is on or off.
    pub qoe_score: QoeScore,
    /// The viewer departed before the video ended (churn `max_watch`
    /// elapsed or the fleet shed the session on admission): the chunk
    /// log and playout accounting cover only the content fetched.
    pub departed: bool,
    /// Epoch telemetry rollups, when enabled (config `telemetry` field
    /// or `MPDASH_TELEMETRY`). **Excluded from [`summary_json`]**: the
    /// same config must serialize byte-identically with telemetry on or
    /// off, so epoch series travel beside artifacts (the `timeline`
    /// NDJSON export), never inside them.
    ///
    /// [`summary_json`]: SessionReport::summary_json
    pub epochs: Option<EpochSeries>,
    /// Discrete-event engine profile (excluded from artifacts).
    pub sim_profile: SimProfile,
}

impl SessionReport {
    /// Fraction of bytes that travelled over cellular.
    pub fn cell_fraction(&self) -> f64 {
        let total = self.wifi_bytes + self.cell_bytes;
        if total == 0 {
            0.0
        } else {
            self.cell_bytes as f64 / total as f64
        }
    }

    /// Cellular-byte saving of `self` versus a `baseline` run
    /// (the paper's headline metric; 1.0 = 100% saved).
    pub fn cell_saving_vs(&self, baseline: &SessionReport) -> f64 {
        if baseline.cell_bytes == 0 {
            return 0.0;
        }
        1.0 - self.cell_bytes as f64 / baseline.cell_bytes as f64
    }

    /// Radio-energy saving versus a baseline run.
    pub fn energy_saving_vs(&self, baseline: &SessionReport) -> f64 {
        let base = baseline.energy.total_j();
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - self.energy.total_j() / base
    }

    /// A deterministic JSON summary of the session: QoE, byte split,
    /// energy, scheduler statistics, and the chunk log. Deliberately
    /// excludes the raw packet trace (too large for artifacts) and any
    /// run-environment detail (worker count, wall time) — two runs of the
    /// same config serialize byte-identically, which is what the batch
    /// determinism tests compare.
    pub fn summary_json(&self) -> Json {
        fn qoe_json(q: &QoeSummary) -> Json {
            Json::obj([
                ("stalls", Json::from(q.stalls)),
                ("stall_time_s", Json::Float(q.stall_time.as_secs_f64())),
                (
                    "startup_delay_s",
                    q.startup_delay
                        .map(|d| Json::Float(d.as_secs_f64()))
                        .unwrap_or(Json::Null),
                ),
                ("mean_bitrate_mbps", Json::Float(q.mean_bitrate_mbps)),
                ("switches", Json::from(q.switches)),
                (
                    "level_histogram",
                    Json::arr(q.level_histogram.iter().map(|&n| Json::from(n))),
                ),
                ("chunks", Json::from(q.chunks)),
            ])
        }
        Json::obj([
            ("qoe", qoe_json(&self.qoe)),
            ("qoe_all", qoe_json(&self.qoe_all)),
            (
                "qoe_score",
                Json::obj([
                    ("rebuffer_ratio", Json::Float(self.qoe_score.rebuffer_ratio)),
                    (
                        "mean_bitrate_mbps",
                        Json::Float(self.qoe_score.mean_bitrate_mbps),
                    ),
                    (
                        "switch_rate_per_min",
                        Json::Float(self.qoe_score.switch_rate_per_min),
                    ),
                    ("composite", Json::Float(self.qoe_score.composite)),
                ]),
            ),
            ("wifi_bytes", Json::from(self.wifi_bytes)),
            ("cell_bytes", Json::from(self.cell_bytes)),
            ("energy_j", Json::Float(self.energy.total_j())),
            ("energy_wifi_j", Json::Float(self.energy.wifi.total_j())),
            ("energy_lte_j", Json::Float(self.energy.lte.total_j())),
            ("duration_s", Json::Float(self.duration.as_secs_f64())),
            ("departed", Json::Bool(self.departed)),
            (
                "scheduler_stats",
                Json::obj([
                    ("toggles", Json::from(self.scheduler_stats.toggles)),
                    (
                        "missed_deadlines",
                        Json::from(self.scheduler_stats.missed_deadlines),
                    ),
                    (
                        "completed",
                        Json::from(self.scheduler_stats.completed_transfers),
                    ),
                ]),
            ),
            (
                "degradation",
                Json::obj([
                    (
                        "deadline_misses",
                        Json::from(self.degradation.deadline_misses),
                    ),
                    (
                        "outage_bridged_chunks",
                        Json::from(self.degradation.outage_bridged_chunks),
                    ),
                    (
                        "subflow_failures",
                        Json::from(self.degradation.subflow_failures),
                    ),
                    (
                        "subflow_revivals",
                        Json::from(self.degradation.subflow_revivals),
                    ),
                ]),
            ),
            (
                "lifecycle",
                Json::obj([
                    ("timeouts", Json::from(self.lifecycle.timeouts)),
                    ("abandoned", Json::from(self.lifecycle.abandoned)),
                    ("resumed", Json::from(self.lifecycle.resumed)),
                    ("retried", Json::from(self.lifecycle.retried)),
                    ("wasted_bytes", Json::from(self.lifecycle.wasted_bytes)),
                ]),
            ),
            (
                "origin",
                Json::obj([
                    ("routed", Json::from(self.origin.routed)),
                    ("failovers", Json::from(self.origin.failovers)),
                    ("breaker_opens", Json::from(self.origin.breaker_opens)),
                    ("hedges", Json::from(self.origin.hedges)),
                    (
                        "hedge_wins_primary",
                        Json::from(self.origin.hedge_wins_primary),
                    ),
                    ("hedge_wins_hedge", Json::from(self.origin.hedge_wins_hedge)),
                    ("cache_hits", Json::from(self.origin.cache_hits)),
                    ("cache_misses", Json::from(self.origin.cache_misses)),
                    ("cache_insertions", Json::from(self.origin.cache_insertions)),
                ]),
            ),
            ("metrics", self.metrics.to_json()),
            (
                "chunks",
                Json::arr(self.chunks.iter().map(|c| {
                    Json::obj([
                        ("index", Json::from(c.index)),
                        ("level", Json::from(c.level)),
                        ("size", Json::from(c.size)),
                        ("started_s", Json::Float(c.started.as_secs_f64())),
                        ("completed_s", Json::Float(c.completed.as_secs_f64())),
                        ("requests", Json::from(u64::from(c.requests))),
                        (
                            "deadline_s",
                            c.deadline
                                .map(|d| Json::Float(d.as_secs_f64()))
                                .unwrap_or(Json::Null),
                        ),
                    ])
                })),
            ),
        ])
    }
}
