//! [`StreamingSession`]: one full DASH playback over the simulated
//! multipath testbed.
//!
//! Per chunk, the driver follows the paper's architecture (Figure 2):
//!
//! 1. The ABR picks the level — under MP-DASH, with the adapter's
//!    aggregate-throughput override in place of the app-level estimate.
//! 2. The video adapter decides whether MP-DASH is active for the chunk
//!    and computes its (possibly extended) deadline window (§5).
//! 3. The chunk is fetched over HTTP; while it downloads, a 50 ms
//!    progress tick feeds delivery samples into the Holt-Winters
//!    estimators and re-runs Algorithm 1, which toggles the cellular
//!    subflow through the MPTCP path mask (the DSS-bit signaling path).
//! 4. Completion feeds the player's buffer; the next request is paced by
//!    buffer space (the idle gaps of Figure 1 emerge from this, not from
//!    any explicit modelling).

use crate::config::{SessionConfig, TransportMode};
use crate::report::{
    ChunkLogEntry, DegradationMetrics, LifecycleStats, OriginStats, SessionReport, SimProfile,
};
use mpdash_core::deadline::SchedulerParams;
use mpdash_core::MpDashControl;
use mpdash_dash::abr::{Abr, AbrInput};
use mpdash_dash::adapter::{DeadlineDecision, VideoAdapter};
use mpdash_dash::player::Player;
use mpdash_dash::qoe::QoeScore;
use mpdash_dash::qoe::QoeSummary;
use mpdash_energy::session_energy;
use mpdash_http::{
    BreakerState, DssRange, HealthTransition, HttpEvent, HttpLayer, LifecycleAction, OriginPool,
    RequestId, RequestTracker, SharedSegmentCache,
};
use mpdash_link::PathId;
use mpdash_mptcp::{MptcpConfig, MptcpSim, PathConfig, PathMask, StepOutcome};
use mpdash_obs::{telemetry_from_env, EpochSeries, MetricsRegistry, TraceEvent, Tracer};
use mpdash_sim::{Rate, SimDuration, SimTime};

/// Progress-tick period while a chunk is in flight (one Holt-Winters slot,
/// ~one testbed RTT — §7.2.2).
const TICK: SimDuration = SimDuration::from_millis(50);

const TICK_ID: u64 = u64::MAX - 1;
const WAKE_ID: u64 = u64::MAX - 2;
/// Timer for a pending lifecycle retry (seeded backoff after a 5xx).
const RETRY_ID: u64 = u64::MAX - 3;

/// Epoch-telemetry state: the session's rollup series plus the
/// last-sampled cumulative values the 50 ms tick turns into per-epoch
/// deltas (per-path bytes, stalled time). Strictly observe-only — it
/// reads simulation state, never steers it.
struct SessionTelemetry {
    series: EpochSeries,
    last_wifi_bytes: u64,
    last_cell_bytes: u64,
    last_stall_ms: u64,
}

impl SessionTelemetry {
    fn new(series: EpochSeries) -> Self {
        SessionTelemetry {
            series,
            last_wifi_bytes: 0,
            last_cell_bytes: 0,
            last_stall_ms: 0,
        }
    }
}

/// A live hedge race: the primary request has been cancelled and the
/// missing byte range re-requested from a second origin. Connection
/// stream order guarantees the primary's terminal event (Aborted, or
/// Complete when the cancel was stale) arrives before the hedge's, so
/// the race resolves deterministically with exactly one winner.
struct HedgeRace {
    /// Origin the primary request was served from.
    primary_origin: usize,
    /// Origin racing the missing tail.
    hedge_origin: usize,
    /// The hedge's request id.
    hedge_req: RequestId,
    /// Banked body bytes when the hedge launched — the byte-range start
    /// of the hedge request; anything the primary delivers past it is a
    /// duplicate.
    hedge_base: u64,
}

struct CurrentChunk {
    index: usize,
    level: usize,
    /// Total body bytes the current request plan delivers (may shrink
    /// below the original chunk size after a downshifted resume).
    size: u64,
    started: SimTime,
    req_id: RequestId,
    /// Useful body bytes banked across every request for this chunk.
    body_received: u64,
    /// Bytes already banked before the current request was issued (the
    /// byte-range offset of the in-flight request).
    received_base: u64,
    deadline: Option<SimDuration>,
    /// Lifecycle state machine for the chunk's requests.
    tracker: RequestTracker,
    /// A cancel is in flight: body progress of the doomed tail must not
    /// count as chunk progress.
    cancelling: bool,
    /// HTTP requests issued for this chunk so far.
    requests: u32,
    /// Pool origin serving the current request (`None` for cache-hit
    /// edge fetches and for poolless legacy sessions).
    origin: Option<usize>,
    /// The current request is a cache-hit edge fetch.
    from_cache: bool,
    /// Last instant the chunk banked new body bytes (request issue time
    /// until the first byte) — drives the hedge trigger.
    last_progress: SimTime,
    /// A hedge race is in flight for this chunk.
    hedge: Option<HedgeRace>,
}

/// The streaming-session driver. See module docs.
pub struct StreamingSession {
    cfg: SessionConfig,
    sim: MptcpSim,
    http: HttpLayer,
    player: Player,
    abr: Box<dyn Abr>,
    adapter: Option<VideoAdapter>,
    control: Option<MpDashControl>,
    current: Option<CurrentChunk>,
    chunks: Vec<ChunkLogEntry>,
    last_chunk_throughput: Option<Rate>,
    record_cursor: usize,
    /// Per-path revival counters as of the last progress check; an
    /// increase means the subflow was re-established and the path's
    /// throughput history must be reset.
    seen_revivals: [u64; 2],
    /// Observe-only structured trace (config tracer, or the process-wide
    /// `MPDASH_TRACE` one when the config leaves it disabled).
    tracer: Tracer,
    /// Session-level counters/histograms, snapshotted into the report.
    metrics: MetricsRegistry,
    /// Epoch telemetry rollups (config `telemetry`, or the process-wide
    /// `MPDASH_TELEMETRY` spec when the config leaves it unset).
    telemetry: Option<SessionTelemetry>,
    /// Request-lifecycle counters for the report.
    lifecycle: LifecycleStats,
    /// Health-tracked origin pool (`None` = legacy single origin).
    pool: Option<OriginPool>,
    /// Shared segment cache handle (`None` = no cache tier).
    cache: Option<SharedSegmentCache>,
    /// Multi-origin serving counters for the report.
    origin_stats: OriginStats,
    /// Hedge losers whose cancel is draining, with the chunk they raced
    /// for; their terminal event accounts the duplicate bytes as waste.
    pending_losers: Vec<(RequestId, usize)>,
    /// The viewer left (churn `max_watch` elapsed, or the fleet shed the
    /// session on admission): no further chunks are requested and the
    /// report accounts only the content actually fetched.
    departed: bool,
}

impl StreamingSession {
    /// Run a session to completion and report.
    pub fn run(cfg: SessionConfig) -> SessionReport {
        let mut s = Self::start(cfg);
        s.drive();
        s.into_report()
    }

    /// Build the session and arm its first request (immediately, or via
    /// a wake timer at `start_offset` for staggered fleet clients). The
    /// caller then owns the event loop: either [`StreamingSession::drive`]
    /// to completion, or externally via [`StreamingSession::step_once`]
    /// interleaved with other sessions.
    pub fn start(cfg: SessionConfig) -> Self {
        let mut s = Self::new(cfg);
        if s.cfg.start_offset == SimDuration::ZERO {
            s.request_next(SimTime::ZERO);
        } else {
            let at = SimTime::ZERO + s.cfg.start_offset;
            s.sim.schedule_app_timer(at, WAKE_ID);
        }
        s
    }

    fn new(cfg: SessionConfig) -> Self {
        let mptcp_cfg = MptcpConfig {
            paths: vec![
                PathConfig::symmetric(cfg.wifi.clone()),
                PathConfig::symmetric(cfg.effective_cell_link()),
            ],
            scheduler: cfg.scheduler,
            cc: cfg.cc,
        };
        let tracer = cfg.tracer.or_env();
        let mut sim = MptcpSim::new(mptcp_cfg);
        sim.set_tracer(tracer.clone());
        if cfg.mode == TransportMode::WifiOnly {
            sim.set_initial_mask(PathMask::only(PathId::WIFI));
        }
        let abr = cfg.abr.build(&cfg.video);
        let (adapter, control) = match cfg.mode {
            TransportMode::MpDash { deadline, alpha } => {
                let adapter = match cfg.adapter_config {
                    Some(mut ac) => {
                        ac.mode = deadline;
                        VideoAdapter::with_config(cfg.abr.category(), ac)
                    }
                    None => VideoAdapter::new(cfg.abr.category(), deadline),
                };
                let costs = cfg.preference.costs();
                let control = MpDashControl::with_predictor(
                    costs.to_vec(),
                    vec![cfg.priors.0, cfg.priors.1],
                    SchedulerParams::with_alpha(alpha).with_debounce(cfg.enable_debounce),
                    cfg.sample_slot,
                    cfg.predictor,
                );
                (Some(adapter), Some(control))
            }
            _ => (None, None),
        };
        let mut player = Player::new(&cfg.video, cfg.buffer_capacity);
        player.set_tracer(tracer.clone());
        player.set_origin(SimTime::ZERO + cfg.start_offset);
        let mut http = HttpLayer::new().with_faults(cfg.server_faults.clone());
        let pool = cfg.origins.clone().map(OriginPool::new);
        if let Some(p) = pool.as_ref() {
            http = http.with_origins(&p.config().origins);
        }
        let cache = cfg.cache.clone();
        http.set_tracer(tracer.clone());
        StreamingSession {
            sim,
            http,
            player,
            abr,
            adapter,
            control,
            current: None,
            chunks: Vec::new(),
            last_chunk_throughput: None,
            record_cursor: 0,
            seen_revivals: [0, 0],
            tracer,
            metrics: MetricsRegistry::new(),
            telemetry: cfg
                .telemetry
                .or_else(telemetry_from_env)
                .map(|spec| SessionTelemetry::new(EpochSeries::new(spec))),
            lifecycle: LifecycleStats::default(),
            pool,
            cache,
            origin_stats: OriginStats::default(),
            pending_losers: Vec::new(),
            departed: false,
            cfg,
        }
    }

    /// Add `n` to a telemetry counter in `now`'s epoch (no-op with
    /// telemetry off).
    fn ts_add(&mut self, now: SimTime, name: &str, n: u64) {
        if let Some(ts) = self.telemetry.as_mut() {
            ts.series.add(now, name, n);
        }
    }

    /// Increment a telemetry counter in `now`'s epoch.
    fn ts_inc(&mut self, now: SimTime, name: &str) {
        self.ts_add(now, name, 1);
    }

    /// Sample cumulative signals into the epoch series: per-path byte
    /// and stalled-time deltas since the last sample, plus the current
    /// buffer level. Runs on the 50 ms progress tick and once more at
    /// session end, so per-epoch byte counters sum exactly to the
    /// report's per-path totals.
    fn telemetry_tick(&mut self, now: SimTime) {
        if self.telemetry.is_none() {
            return;
        }
        let wifi = self.sim.path_bytes(PathId::WIFI);
        let cell = self.sim.path_bytes(PathId::CELLULAR);
        let stall_ms = self.player.stall_time().as_millis_f64() as u64;
        let buffer_ms = self.player.buffer().as_millis_f64() as u64;
        let ts = self.telemetry.as_mut().expect("checked above");
        if wifi > ts.last_wifi_bytes {
            ts.series.add(now, "wifi_bytes", wifi - ts.last_wifi_bytes);
            ts.last_wifi_bytes = wifi;
        }
        if cell > ts.last_cell_bytes {
            ts.series.add(now, "cell_bytes", cell - ts.last_cell_bytes);
            ts.last_cell_bytes = cell;
        }
        if stall_ms > ts.last_stall_ms {
            ts.series.add(now, "stall_ms", stall_ms - ts.last_stall_ms);
            ts.last_stall_ms = stall_ms;
        }
        ts.series.observe(now, "buffer_ms", buffer_ms);
    }

    /// Emit breaker transitions to the trace and count trips.
    fn emit_health(&mut self, now: SimTime, transitions: &[HealthTransition]) {
        for tr in transitions {
            if tr.state == BreakerState::Open {
                self.origin_stats.breaker_opens += 1;
                self.metrics.inc("breaker_opens");
                self.ts_inc(now, "breaker_opens");
            }
            let (origin, state, failures) = (tr.origin, tr.state.name(), u64::from(tr.failures));
            self.tracer.emit_with(now, || TraceEvent::OriginHealth {
                origin,
                state,
                failures,
            });
        }
    }

    /// Pick an origin through the pool, tracing any breaker promotion
    /// and the routing decision. `None` without a pool (legacy single
    /// origin).
    fn route_origin(&mut self, now: SimTime, chunk: usize, reason: &'static str) -> Option<usize> {
        let (origin, transitions) = self.pool.as_mut()?.route(now);
        self.emit_health(now, &transitions);
        self.origin_stats.routed += 1;
        self.metrics.inc("origin_routed");
        self.tracer.emit_with(now, || TraceEvent::OriginRouted {
            chunk,
            origin,
            reason,
        });
        Some(origin)
    }

    /// Record `origin`'s request outcome with its breaker.
    fn origin_outcome(&mut self, now: SimTime, origin: Option<usize>, success: bool) {
        let Some(origin) = origin else { return };
        let Some(pool) = self.pool.as_mut() else {
            return;
        };
        let tr = if success {
            pool.on_success(origin)
        } else {
            pool.on_failure(origin, now)
        };
        if let Some(tr) = tr {
            self.emit_health(now, &[tr]);
        }
    }

    fn apply_enabled(&mut self, enabled: &[bool]) {
        let mut mask = PathMask::NONE;
        for (i, &e) in enabled.iter().enumerate() {
            if e {
                mask = mask.with(PathId(i as u8));
            }
        }
        self.sim.set_desired_mask(mask);
    }

    fn request_next(&mut self, now: SimTime) {
        if self.departed {
            return;
        }
        // Churn: the viewer closes the player once their drawn viewing
        // duration elapses, even with chapters left. Checked before each
        // request so the first chunk is always fetched (a positive limit
        // cannot have elapsed at the session origin) and in-flight bytes
        // drain normally.
        if let Some(limit) = self.cfg.max_watch {
            if now.saturating_since(self.player.origin()) >= limit
                && self.player.chunks_downloaded() > 0
            {
                self.depart(now);
                return;
            }
        }
        let Some(index) = self.player.next_chunk_index() else {
            return;
        };
        self.player.advance_to(now);
        let override_throughput = self.control.as_ref().map(|c| c.aggregate_throughput());
        let input = AbrInput {
            buffer: self.player.buffer(),
            buffer_capacity: self.player.capacity(),
            last_level: self.player.history().last().map(|r| r.level),
            last_chunk_throughput: self.last_chunk_throughput,
            override_throughput,
        };
        let level = self.abr.select(&self.cfg.video, &input);
        let size = self.cfg.video.chunk_size(index, level);
        self.tracer.emit_with(now, || TraceEvent::AbrChoice {
            chunk: index,
            level,
            estimate_mbps: override_throughput
                .or(input.last_chunk_throughput)
                .map(|r| r.as_mbps_f64())
                .unwrap_or(0.0),
        });

        let mut deadline = None;
        if let (Some(adapter), Some(control)) = (self.adapter.as_ref(), self.control.as_mut()) {
            let estimate = control.aggregate_throughput();
            match adapter.decide(
                &self.cfg.video,
                self.abr.as_ref(),
                level,
                size,
                self.player.buffer(),
                self.player.capacity(),
                estimate,
            ) {
                DeadlineDecision::Schedule(window) => {
                    let enabled = control.mp_dash_enable(now, size, window).to_vec();
                    self.apply_enabled(&enabled);
                    deadline = Some(window);
                    self.metrics.inc("deadline_granted");
                    self.tracer.emit_with(now, || TraceEvent::DeadlineGranted {
                        chunk: index,
                        size,
                        window_s: window.as_secs_f64(),
                    });
                }
                DeadlineDecision::Bypass => {
                    let enabled = control.mp_dash_disable().to_vec();
                    self.apply_enabled(&enabled);
                    self.metrics.inc("deadline_bypassed");
                    self.tracer
                        .emit_with(now, || TraceEvent::DeadlineBypassed { chunk: index });
                }
            }
        }

        // Serve from the shared segment cache when the full chunk is
        // hot; otherwise route through the origin pool (or the legacy
        // single origin).
        let cached = self.cache.as_ref().and_then(|c| c.lookup((index, level)));
        let (req_id, origin, from_cache) = match cached {
            Some(bytes) => {
                debug_assert_eq!(bytes, size, "a cached segment must match the origin bytes");
                self.origin_stats.cache_hits += 1;
                self.metrics.inc("cache_hits");
                self.ts_inc(now, "cache_hits");
                self.tracer.emit_with(now, || TraceEvent::Cache {
                    chunk: index,
                    level,
                    outcome: "hit",
                    bytes,
                });
                let delay = self
                    .cache
                    .as_ref()
                    .expect("hit implies a cache")
                    .edge_delay();
                (self.http.get_edge(&mut self.sim, size, delay), None, true)
            }
            None => {
                if self.cache.is_some() {
                    self.origin_stats.cache_misses += 1;
                    self.metrics.inc("cache_misses");
                    self.ts_inc(now, "cache_misses");
                    self.tracer.emit_with(now, || TraceEvent::Cache {
                        chunk: index,
                        level,
                        outcome: "miss",
                        bytes: size,
                    });
                }
                let origin = self.route_origin(now, index, "initial");
                let req_id = match origin {
                    Some(i) => self.http.get_from(&mut self.sim, size, i),
                    None => self.http.get(&mut self.sim, size),
                };
                (req_id, origin, false)
            }
        };
        let tracker = RequestTracker::new(self.cfg.lifecycle, index, now, size, deadline);
        self.current = Some(CurrentChunk {
            index,
            level,
            size,
            started: now,
            req_id,
            body_received: 0,
            received_base: 0,
            deadline,
            tracker,
            cancelling: false,
            requests: 1,
            origin,
            from_cache,
            last_progress: now,
            hedge: None,
        });
        self.sim.schedule_app_timer(now + TICK, TICK_ID);
    }

    /// Feed newly received packets into the estimators and re-run the
    /// scheduling decision.
    fn progress_check(&mut self, now: SimTime) {
        let records = self.sim.records();
        let new = &records[self.record_cursor..];
        if let Some(control) = self.control.as_mut() {
            for r in new {
                control.on_bytes(r.path.index(), r.t, r.len);
            }
        }
        self.record_cursor = records.len();
        // A revived subflow came back as a *new* association: drop the
        // old association's throughput history before the next decision,
        // so Algorithm 1 starts from the prior instead of a pre-fault
        // (or blackout-dragged) estimate.
        for (i, path) in [PathId::WIFI, PathId::CELLULAR].into_iter().enumerate() {
            let revivals = self.sim.subflow_revivals(path);
            if revivals > self.seen_revivals[i] {
                self.seen_revivals[i] = revivals;
                if let Some(control) = self.control.as_mut() {
                    control.on_path_reset(i, now);
                }
            }
        }
        let received = self.current.as_ref().map(|c| c.body_received);
        let busy = [
            self.sim.path_in_flight(PathId::WIFI) > 0,
            self.sim.path_in_flight(PathId::CELLULAR) > 0,
        ];
        if let (Some(control), Some(received)) = (self.control.as_mut(), received) {
            if let Some(enabled) = control.on_progress(now, received, &busy) {
                // Trace the toggle with the feasibility inputs Algorithm 1
                // used: the preferred-path estimate versus bytes left in
                // the window.
                let wifi_estimate_mbps = control.estimate(0).as_mbps_f64();
                self.metrics.inc("scheduler_toggles");
                if self.tracer.enabled() {
                    let (size, window_s, elapsed_s) = self
                        .current
                        .as_ref()
                        .map(|c| {
                            (
                                c.size,
                                c.deadline.map(|d| d.as_secs_f64()).unwrap_or(0.0),
                                now.saturating_since(c.started).as_secs_f64(),
                            )
                        })
                        .unwrap_or((0, 0.0, 0.0));
                    let cell_enabled = enabled.get(1).copied().unwrap_or(false);
                    self.tracer.emit_with(now, || TraceEvent::SchedulerToggle {
                        cell_enabled,
                        wifi_estimate_mbps,
                        received,
                        size,
                        window_s,
                        elapsed_s,
                    });
                }
                self.apply_enabled(&enabled);
            }
        }
    }

    fn finish_chunk(&mut self, now: SimTime, body_dss: DssRange) {
        let cur = self.current.take().expect("completion without a chunk");
        self.origin_outcome(now, cur.origin, true);
        // Bank the finished segment in the shared cache — but only a
        // clean full-chunk fetch: a downshift-mixed body (resume at a
        // lower level) is not the segment any other client would ask
        // for.
        if let Some(cache) = self.cache.as_ref() {
            if !cur.from_cache && cur.size == self.cfg.video.chunk_size(cur.index, cur.level) {
                cache.insert((cur.index, cur.level), cur.size);
                self.origin_stats.cache_insertions += 1;
                self.metrics.inc("cache_insertions");
                let (chunk, level, bytes) = (cur.index, cur.level, cur.size);
                self.tracer.emit_with(now, || TraceEvent::Cache {
                    chunk,
                    level,
                    outcome: "insert",
                    bytes,
                });
            }
        }
        let fetch = now.saturating_since(cur.started);
        let dl = fetch.as_secs_f64();
        if dl > 0.0 {
            self.last_chunk_throughput =
                Some(Rate::from_mbps_f64(cur.size as f64 * 8.0 / dl / 1e6));
        }
        self.metrics.inc("chunks_fetched");
        self.metrics
            .observe("chunk_fetch_ms", fetch.as_millis_f64() as u64);
        self.metrics.observe("chunk_bytes", cur.size);
        self.ts_inc(now, "chunks");
        self.ts_add(
            now,
            "chunk_bitrate_kbps",
            self.cfg.video.bitrate(cur.level).as_bps() / 1000,
        );
        if self.chunks.last().is_some_and(|p| p.level != cur.level) {
            self.ts_inc(now, "switches");
        }
        self.tracer.emit_with(now, || TraceEvent::ChunkFetched {
            chunk: cur.index,
            level: cur.level,
            size: cur.size,
            started_s: cur.started.as_secs_f64(),
        });
        if let Some(window) = cur.deadline {
            let margin = window.as_secs_f64() - dl;
            let chunk = cur.index;
            if margin >= 0.0 {
                self.metrics.inc("deadline_hits");
                self.ts_inc(now, "deadline_hits");
                self.tracer.emit_with(now, || TraceEvent::DeadlineHit {
                    chunk,
                    margin_s: margin,
                });
            } else {
                self.metrics.inc("deadline_misses");
                self.ts_inc(now, "deadline_misses");
                self.tracer.emit_with(now, || TraceEvent::DeadlineMissed {
                    chunk,
                    overrun_s: -margin,
                });
            }
        }
        if let Some(control) = self.control.as_mut() {
            // Final progress report completes the transfer (reverts the
            // transport to vanilla until the next chunk's decision).
            if let Some(enabled) = control.on_progress(now, cur.size, &[false, false]) {
                self.apply_enabled(&enabled);
            }
        }
        self.player
            .on_chunk_complete(now, cur.level, cur.size, cur.started);
        self.chunks.push(ChunkLogEntry {
            index: cur.index,
            level: cur.level,
            size: cur.size,
            started: cur.started,
            completed: now,
            body_dss,
            deadline: cur.deadline,
            requests: cur.requests,
        });
        // Pace the next request on buffer space.
        if self.player.has_space() {
            self.request_next(now);
        } else {
            let wait = self.player.time_until_space(now);
            self.sim.schedule_app_timer(now + wait, WAKE_ID);
        }
    }

    /// React to one client-side HTTP event (from a delivery or from a
    /// cancel processed at the server).
    fn handle_http_event(&mut self, t: SimTime, ev: HttpEvent) {
        let ours = |cur: &CurrentChunk, id: RequestId| cur.req_id == id;
        match ev {
            HttpEvent::BodyProgress { id, received, .. } => {
                if let Some(cur) = self.current.as_mut() {
                    if ours(cur, id) && !cur.cancelling {
                        cur.body_received = cur.received_base + received;
                        cur.last_progress = t;
                        cur.tracker.on_progress(t, cur.body_received);
                    }
                }
            }
            HttpEvent::Complete { id, body_dss } => {
                if self.settle_loser(t, id, body_dss.len()) {
                    return;
                }
                let is_ours = self.current.as_ref().map(|c| ours(c, id)).unwrap_or(false);
                if is_ours {
                    // A live hedge race means the cancel was stale and
                    // the primary won; retire the loser first.
                    self.on_hedge_primary_won(t);
                    self.finish_chunk(t, body_dss);
                }
            }
            HttpEvent::Error { id } => {
                if self.settle_loser(t, id, 0) {
                    return;
                }
                let is_ours = self.current.as_ref().map(|c| ours(c, id)).unwrap_or(false);
                if is_ours {
                    let racing = self.current.as_ref().is_some_and(|c| c.hedge.is_some());
                    if racing {
                        // The primary 5xxed mid-race: the hedge wins
                        // with nothing wasted (a 5xx has no body).
                        self.on_hedge_won(t, 0);
                    } else {
                        self.on_request_error(t);
                    }
                }
            }
            HttpEvent::Aborted { id, received, .. } => {
                if self.settle_loser(t, id, received) {
                    return;
                }
                let is_ours = self.current.as_ref().map(|c| ours(c, id)).unwrap_or(false);
                if is_ours {
                    let racing = self.current.as_ref().is_some_and(|c| c.hedge.is_some());
                    if racing {
                        self.on_hedge_won(t, received);
                    } else {
                        self.on_request_aborted(t, received);
                    }
                }
            }
            HttpEvent::HeaderReceived { .. } => {}
        }
    }

    /// If `id` is a retired hedge loser, account its delivered bytes as
    /// waste and drop it. Returns `true` when the event was the
    /// loser's and is now fully settled.
    fn settle_loser(&mut self, now: SimTime, id: RequestId, delivered: u64) -> bool {
        let Some(pos) = self.pending_losers.iter().position(|&(l, _)| l == id) else {
            return false;
        };
        let (_, chunk) = self.pending_losers.remove(pos);
        // Everything the loser delivered duplicates bytes the winner
        // already provided.
        self.lifecycle.wasted_bytes += delivered;
        self.metrics.add("wasted_bytes", delivered);
        self.ts_add(now, "wasted_bytes", delivered);
        self.tracer
            .emit_with(now, || TraceEvent::HedgeLoserSettled {
                chunk,
                wasted: delivered,
            });
        true
    }

    /// The current request got a 5xx: schedule the seeded-backoff retry.
    fn on_request_error(&mut self, now: SimTime) {
        let origin = self.current.as_ref().expect("error without a chunk").origin;
        self.origin_outcome(now, origin, false);
        let cur = self.current.as_mut().expect("error without a chunk");
        self.metrics.inc("request_errors");
        match cur.tracker.on_error(now) {
            LifecycleAction::Retry {
                at,
                attempt,
                backoff,
            } => {
                let chunk = cur.index;
                self.lifecycle.retried += 1;
                self.metrics.inc("requests_retried");
                self.ts_inc(now, "retries");
                self.tracer.emit_with(now, || TraceEvent::RequestRetried {
                    chunk,
                    attempt: attempt as u64,
                    backoff_s: backoff.as_secs_f64(),
                });
                self.sim.schedule_app_timer(at, RETRY_ID);
            }
            // on_error always answers with a retry (wait-forever retries
            // immediately so a bounded burst can never wedge a session).
            other => unreachable!("on_error returned {other:?}"),
        }
    }

    /// The cancelled request drained: account the wasted tail and issue
    /// the byte-range resume (optionally downshifted by the ABR) —
    /// routed by the pool, so the tail lands on a different origin when
    /// the abandoned one's breaker is Open.
    fn on_request_aborted(&mut self, now: SimTime, request_received: u64) {
        // An abandonment is evidence against the origin that served the
        // doomed request (cache-hit edge fetches have no origin).
        let origin = self.current.as_ref().expect("abort without a chunk").origin;
        self.origin_outcome(now, origin, false);
        let cur = self.current.as_mut().expect("abort without a chunk");
        let final_received = cur.received_base + request_received;
        let acct = cur.tracker.on_aborted(final_received);
        self.lifecycle.wasted_bytes += acct.wasted;
        self.metrics.add("wasted_bytes", acct.wasted);
        // Field access, not `ts_add`: `cur` keeps `self.current` borrowed.
        if let Some(ts) = self.telemetry.as_mut() {
            ts.series.add(now, "wasted_bytes", acct.wasted);
        }
        let resume_from = acct.resume_from;

        // Optionally re-invoke the ABR with the partial-download state:
        // the tail may be fetched at a lower level, scaled by the
        // fraction of the chunk still missing.
        if self.cfg.lifecycle.resume_downshift && cur.size > 0 {
            let index = cur.index;
            let input = AbrInput {
                buffer: self.player.buffer(),
                buffer_capacity: self.player.capacity(),
                last_level: Some(cur.level),
                last_chunk_throughput: self.last_chunk_throughput,
                override_throughput: self.control.as_ref().map(|c| c.aggregate_throughput()),
            };
            let picked = self.abr.select(&self.cfg.video, &input);
            let cur = self.current.as_mut().expect("abort without a chunk");
            if picked < cur.level {
                let remaining_frac = (cur.size - resume_from) as f64 / cur.size as f64;
                let tail_full = self.cfg.video.chunk_size(index, picked);
                let tail = (tail_full as f64 * remaining_frac).ceil() as u64;
                cur.level = picked;
                cur.size = resume_from + tail;
            }
        }

        let cur = self.current.as_mut().expect("abort without a chunk");
        let (index, size, level, prev_origin) = (cur.index, cur.size, cur.level, cur.origin);
        let new_origin = self.route_origin(now, index, "resume");
        let req_id = match new_origin {
            Some(i) => self
                .http
                .get_range_from(&mut self.sim, size, resume_from, i),
            None => self.http.get_range(&mut self.sim, size, resume_from),
        };
        if let (Some(prev), Some(new)) = (prev_origin, new_origin) {
            if prev != new {
                self.origin_stats.failovers += 1;
                self.metrics.inc("origin_failovers");
            }
        }
        let cur = self.current.as_mut().expect("abort without a chunk");
        cur.req_id = req_id;
        cur.received_base = resume_from;
        cur.body_received = resume_from;
        cur.cancelling = false;
        cur.requests += 1;
        cur.origin = new_origin;
        cur.from_cache = false;
        cur.last_progress = now;
        cur.tracker.on_resumed(now, size);
        self.lifecycle.resumed += 1;
        self.metrics.inc("requests_resumed");
        self.ts_inc(now, "resumes");
        self.tracer.emit_with(now, || TraceEvent::RequestResumed {
            chunk: index,
            from: resume_from,
            size,
            level,
        });
    }

    /// Per-tick lifecycle decision: feed the tracker the feasibility
    /// verdict and act on a timeout-driven abandonment.
    fn lifecycle_poll(&mut self, now: SimTime) {
        if self.cfg.lifecycle.is_passive() {
            return;
        }
        let Some(cur) = self.current.as_ref() else {
            return;
        };
        if cur.cancelling {
            return;
        }
        // Feasibility: can the remaining bytes make the deadline at the
        // current aggregate estimate? Only *deep* infeasibility (2× the
        // remaining window) counts, and only before the deadline — past
        // it, restarting the tail can no longer help.
        let infeasible = match (self.control.as_ref(), cur.deadline) {
            (Some(control), Some(window)) => {
                let deadline_at = cur.started + window;
                now < deadline_at && {
                    let remaining = cur.size.saturating_sub(cur.body_received);
                    let budget = deadline_at.saturating_since(now);
                    control.aggregate_throughput().time_to_send(remaining) > budget * 2
                }
            }
            _ => false,
        };
        let cur = self.current.as_mut().expect("checked above");
        match cur.tracker.poll(now, infeasible) {
            LifecycleAction::Abandon { cause, received } => {
                let (chunk, size, req_id, started) = (cur.index, cur.size, cur.req_id, cur.started);
                cur.cancelling = true;
                self.lifecycle.timeouts += 1;
                self.lifecycle.abandoned += 1;
                self.metrics.inc("request_timeouts");
                self.metrics.inc("requests_abandoned");
                self.ts_inc(now, "timeouts");
                let after_s = now.saturating_since(started).as_secs_f64();
                self.tracer.emit_with(now, || TraceEvent::RequestTimeout {
                    chunk,
                    cause,
                    after_s,
                });
                self.tracer.emit_with(now, || TraceEvent::RequestAbandoned {
                    chunk,
                    received,
                    size,
                });
                self.http.cancel(&mut self.sim, req_id);
            }
            LifecycleAction::Retry { .. } => {
                unreachable!("poll never answers with a retry")
            }
            LifecycleAction::None => {}
        }
    }

    /// The backoff timer fired: re-issue the request for the missing
    /// range, routed by the pool (a tripped breaker steers the retry to
    /// a different origin).
    fn on_retry_fire(&mut self, now: SimTime) {
        let Some(cur) = self.current.as_ref() else {
            return;
        };
        let (index, size, from, prev_origin) = (cur.index, cur.size, cur.body_received, cur.origin);
        let new_origin = self.route_origin(now, index, "retry");
        let req_id = match new_origin {
            Some(i) => self.http.get_range_from(&mut self.sim, size, from, i),
            None => self.http.get_range(&mut self.sim, size, from),
        };
        if let (Some(prev), Some(new)) = (prev_origin, new_origin) {
            if prev != new {
                self.origin_stats.failovers += 1;
                self.metrics.inc("origin_failovers");
            }
        }
        let cur = self.current.as_mut().expect("checked above");
        cur.req_id = req_id;
        cur.received_base = from;
        cur.requests += 1;
        cur.origin = new_origin;
        cur.from_cache = false;
        cur.last_progress = now;
        cur.tracker.on_retry_fire(now);
    }

    /// Deterministic hedge trigger, polled on the progress tick: when a
    /// deadline-granted origin fetch has banked no new bytes for the
    /// configured quantile of its deadline budget and a second origin
    /// is available, cancel the wedged request and race the missing
    /// byte range from the other origin. On the single FIFO connection
    /// the "race" is a cancel-then-reissue: the upstream cancel is
    /// processed before the hedge GET, so the hedge never queues behind
    /// the wedged response's bytes, and the primary's terminal event
    /// resolves the race before the hedge's can arrive.
    fn hedge_poll(&mut self, now: SimTime) {
        let Some(cur) = self.current.as_ref() else {
            return;
        };
        if cur.cancelling || cur.hedge.is_some() || cur.from_cache {
            return;
        }
        let (Some(primary), Some(window)) = (cur.origin, cur.deadline) else {
            return;
        };
        let idle = now.saturating_since(cur.last_progress);
        let (chunk, size, req_id, from) = (cur.index, cur.size, cur.req_id, cur.body_received);
        let Some(pool) = self.pool.as_mut() else {
            return;
        };
        if !pool.config().hedge_due(window, idle) {
            return;
        }
        // The stall is evidence against the serving origin — count it
        // before picking the hedge target so a repeat offender trips.
        let fail = pool.on_failure(primary, now);
        let (target, mut transitions) = pool.hedge_target(now, primary);
        if let Some(tr) = fail {
            transitions.insert(0, tr);
        }
        self.emit_health(now, &transitions);
        let Some(hedge_origin) = target else {
            // No healthy second origin: ride the primary out (the
            // lifecycle policy may still abandon it).
            return;
        };
        // Cancel first: upstream FIFO applies the cancel before the
        // hedge GET reaches the server.
        self.http.cancel(&mut self.sim, req_id);
        let hedge_req = self
            .http
            .get_range_from(&mut self.sim, size, from, hedge_origin);
        self.origin_stats.routed += 1;
        self.origin_stats.hedges += 1;
        self.metrics.inc("origin_routed");
        self.metrics.inc("hedges");
        self.ts_inc(now, "hedges");
        self.tracer.emit_with(now, || TraceEvent::OriginRouted {
            chunk,
            origin: hedge_origin,
            reason: "hedge",
        });
        self.tracer.emit_with(now, || TraceEvent::Hedge {
            chunk,
            origin: primary,
            hedge_origin,
            winner: None,
            wasted: 0,
        });
        let cur = self.current.as_mut().expect("checked above");
        cur.cancelling = true;
        cur.requests += 1;
        cur.hedge = Some(HedgeRace {
            primary_origin: primary,
            hedge_origin,
            hedge_req,
            hedge_base: from,
        });
    }

    /// The primary's Aborted arrived while a hedge race was live: the
    /// hedge wins. Account the primary's duplicate tail and promote the
    /// hedge request to the current fetch, like a byte-range resume.
    fn on_hedge_won(&mut self, now: SimTime, request_received: u64) {
        let cur = self.current.as_mut().expect("hedge without a chunk");
        let race = cur.hedge.take().expect("caller checked the race");
        let final_received = cur.received_base + request_received;
        let wasted = final_received.saturating_sub(race.hedge_base);
        cur.req_id = race.hedge_req;
        cur.origin = Some(race.hedge_origin);
        cur.received_base = race.hedge_base;
        cur.body_received = race.hedge_base;
        cur.cancelling = false;
        cur.from_cache = false;
        cur.last_progress = now;
        let size = cur.size;
        cur.tracker.on_resumed(now, size);
        let (chunk, primary, hedge_origin) = (cur.index, race.primary_origin, race.hedge_origin);
        self.lifecycle.wasted_bytes += wasted;
        self.metrics.add("wasted_bytes", wasted);
        self.origin_stats.hedge_wins_hedge += 1;
        self.metrics.inc("hedge_wins_hedge");
        self.ts_add(now, "wasted_bytes", wasted);
        self.tracer.emit_with(now, || TraceEvent::Hedge {
            chunk,
            origin: primary,
            hedge_origin,
            winner: Some("hedge"),
            wasted,
        });
    }

    /// The primary's Complete arrived while a hedge race was live: the
    /// cancel was stale and the primary won. Cancel the losing hedge
    /// *before* the caller's `finish_chunk` issues the next chunk's GET
    /// (upstream FIFO then applies the cancel while the hedge is still
    /// the last-served response); its drained bytes settle as waste
    /// later.
    fn on_hedge_primary_won(&mut self, now: SimTime) {
        let Some(cur) = self.current.as_mut() else {
            return;
        };
        let Some(race) = cur.hedge.take() else {
            return;
        };
        cur.cancelling = false;
        let chunk = cur.index;
        self.http.cancel(&mut self.sim, race.hedge_req);
        self.pending_losers.push((race.hedge_req, chunk));
        self.origin_stats.hedge_wins_primary += 1;
        self.metrics.inc("hedge_wins_primary");
        self.tracer.emit_with(now, || TraceEvent::Hedge {
            chunk,
            origin: race.primary_origin,
            hedge_origin: race.hedge_origin,
            winner: Some("primary"),
            wasted: 0,
        });
    }

    /// Time of this session's next pending event, if any (fleet
    /// interleaving).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.sim.peek_time()
    }

    /// True once every chunk is downloaded (or the viewer departed) and
    /// the transport has drained. A finished session schedules no
    /// further shared-bottleneck packets.
    pub fn finished(&self) -> bool {
        (self.player.download_complete() || self.departed) && self.sim.quiescent()
    }

    /// The viewer left before the video ended (churn or shedding).
    pub fn departed(&self) -> bool {
        self.departed
    }

    /// Viewer departure: stop requesting chunks, let in-flight transport
    /// drain, and finalize a partial report.
    fn depart(&mut self, now: SimTime) {
        self.departed = true;
        self.player.depart();
        let watched = now.saturating_since(self.player.origin());
        let chunks = self.player.chunks_downloaded() as u64;
        self.metrics.inc("departed");
        self.ts_inc(now, "departures");
        self.tracer.emit_with(now, || TraceEvent::SessionDeparted {
            watched_s: watched.as_secs_f64(),
            chunks,
        });
    }

    /// Admission-control shedding (fleet overload policy): the session
    /// is turned away before its first request. It finalizes an empty
    /// report — zero chunks, zero bytes — without ever being stepped.
    pub fn mark_shed(&mut self) {
        self.departed = true;
        self.player.depart();
        self.metrics.inc("shed");
    }

    /// Hedge accounting counters for the runtime watchdog:
    /// `(hedges, wins_primary, wins_hedge)`.
    pub fn hedge_accounting(&self) -> (u64, u64, u64) {
        (
            self.origin_stats.hedges,
            self.origin_stats.hedge_wins_primary,
            self.origin_stats.hedge_wins_hedge,
        )
    }

    /// Breaker-state sanity probe for the runtime watchdog (`Ok(())`
    /// for poolless sessions).
    pub fn breaker_sanity(&self) -> Result<(), &'static str> {
        self.pool.as_ref().map_or(Ok(()), |p| p.sanity())
    }

    /// Route one of this session's paths through a shared bottleneck.
    /// Must be called before the first request is transmitted (i.e.
    /// right after [`StreamingSession::start`], before any stepping).
    pub fn attach_shared(
        &mut self,
        path: PathId,
        bottleneck: &mpdash_link::SharedBottleneck,
    ) -> mpdash_link::FlowId {
        self.sim.attach_shared(path, bottleneck)
    }

    /// Feed back a shared-bottleneck departure for one of this session's
    /// packets (see [`MptcpSim::on_shared_departure`]). `marked` carries
    /// an AQM ECN mark through to the transport.
    pub fn on_shared_departure(
        &mut self,
        path: PathId,
        ticket: mpdash_link::Ticket,
        depart_at: SimTime,
        marked: bool,
    ) {
        self.sim
            .on_shared_departure(path, ticket, depart_at, marked);
    }

    /// Feed back a shared-bottleneck AQM dequeue drop for one of this
    /// session's packets (see [`MptcpSim::on_shared_drop`]).
    pub fn on_shared_drop(&mut self, path: PathId, ticket: mpdash_link::Ticket, at: SimTime) {
        self.sim.on_shared_drop(path, ticket, at);
    }

    /// Process one event from this session's queue; `false` when the
    /// queue is empty.
    pub fn step_once(&mut self) -> bool {
        let Some((t, outcome)) = self.sim.step() else {
            return false;
        };
        match outcome {
            StepOutcome::Transport { newly_delivered } => {
                if newly_delivered > 0 {
                    for ev in self.http.on_delivered(newly_delivered) {
                        self.handle_http_event(t, ev);
                    }
                    // Mid-download decision on fresh bytes.
                    if self.current.is_some() {
                        self.progress_check(t);
                    }
                }
            }
            StepOutcome::AppTimer { id: TICK_ID } => {
                if self.current.is_some() {
                    self.player.advance_to(t);
                    self.progress_check(t);
                    self.hedge_poll(t);
                    self.lifecycle_poll(t);
                    self.telemetry_tick(t);
                    self.sim.schedule_app_timer(t + TICK, TICK_ID);
                }
            }
            StepOutcome::AppTimer { id: WAKE_ID } => {
                self.request_next(t);
            }
            StepOutcome::AppTimer { id: RETRY_ID } => {
                self.on_retry_fire(t);
            }
            StepOutcome::AppTimer { id } => {
                // Deferred server sends (fault-delayed response parts).
                self.http.on_app_timer(&mut self.sim, id);
            }
            StepOutcome::ServerMsg { id } => {
                for ev in self.http.on_server_msg(&mut self.sim, id) {
                    self.handle_http_event(t, ev);
                }
            }
        }
        true
    }

    fn drive(&mut self) {
        while !self.finished() && self.step_once() {}
        assert!(
            self.player.download_complete() || self.departed,
            "session ended with {}/{} chunks",
            self.player.chunks_downloaded(),
            self.cfg.video.n_chunks()
        );
    }

    /// Final QoE/energy/report accounting. Callers outside
    /// [`StreamingSession::run`] (the fleet loop) must only call this
    /// once [`StreamingSession::finished`] holds.
    pub fn into_report(mut self) -> SessionReport {
        // Let the remaining buffer play out for final QoE accounting.
        // All session clocks measure from the player's origin (zero for
        // standalone runs, the stagger offset for fleet clients).
        let origin = self.player.origin();
        let startup = self.player.startup_delay().unwrap_or(SimDuration::ZERO);
        // Departed viewers only play out the content they fetched; full
        // sessions play out the whole video.
        let content = if self.departed {
            self.cfg
                .video
                .chunk_duration()
                .mul_f64(self.player.chunks_downloaded() as f64)
        } else {
            self.cfg.video.total_duration()
        };
        let playout_end = origin + startup + content + self.player.stall_time();
        let end = playout_end.max(self.sim.now());
        self.player.advance_to(end);
        let duration = end.saturating_since(origin);
        // Final telemetry sample: flush the remaining per-path byte and
        // stall deltas so epoch totals match the report's exactly.
        self.telemetry_tick(end);

        let records = self.sim.records().to_vec();
        let wifi_pkts: Vec<(SimTime, u64)> = records
            .iter()
            .filter(|r| r.path == PathId::WIFI)
            .map(|r| (r.t, r.len))
            .collect();
        let cell_pkts: Vec<(SimTime, u64)> = records
            .iter()
            .filter(|r| r.path == PathId::CELLULAR)
            .map(|r| (r.t, r.len))
            .collect();
        let energy = session_energy(&self.cfg.device, &wifi_pkts, &cell_pkts, duration);

        // Degradation accounting: a chunk is "outage-bridged" when the
        // preferred path contributed under 10% of its body bytes while
        // the other path carried it — cellular covering a WiFi fault
        // window (or vice versa under CellularFirst).
        let costs = self.cfg.preference.costs();
        let preferred = if costs[0] <= costs[1] {
            PathId::WIFI
        } else {
            PathId::CELLULAR
        };
        let mut outage_bridged_chunks = 0u64;
        for c in &self.chunks {
            let (lo, hi) = (c.body_dss.start, c.body_dss.end);
            let mut pref = 0u64;
            let mut other = 0u64;
            for r in records.iter().filter(|r| r.dss >= lo && r.dss < hi) {
                if r.path == preferred {
                    pref += r.len;
                } else {
                    other += r.len;
                }
            }
            if other > 0 && pref * 10 < pref + other {
                outage_bridged_chunks += 1;
            }
        }
        let scheduler_stats = self.control.as_ref().map(|c| c.stats()).unwrap_or_default();
        let degradation = DegradationMetrics {
            deadline_misses: scheduler_stats.missed_deadlines,
            outage_bridged_chunks,
            subflow_failures: self.sim.subflow_failures(PathId::WIFI)
                + self.sim.subflow_failures(PathId::CELLULAR),
            subflow_revivals: self.sim.subflow_revivals(PathId::WIFI)
                + self.sim.subflow_revivals(PathId::CELLULAR),
        };

        // Fold the end-of-run aggregates into the registry so the
        // snapshot is self-contained (counters registered during the run
        // keep their earlier positions).
        self.metrics
            .add("scheduler_toggle_total", scheduler_stats.toggles);
        self.metrics
            .add("subflow_failures", degradation.subflow_failures);
        self.metrics
            .add("subflow_revivals", degradation.subflow_revivals);
        self.metrics.add("stalls", self.player.stalls());
        self.metrics
            .add("lifecycle_timeouts", self.lifecycle.timeouts);
        self.metrics
            .add("lifecycle_abandoned", self.lifecycle.abandoned);
        self.metrics
            .add("lifecycle_resumed", self.lifecycle.resumed);
        self.metrics
            .add("lifecycle_retried", self.lifecycle.retried);
        self.tracer.flush();

        let qoe = QoeSummary::from_player(&self.cfg.video, &self.player, 0.2);
        let top_rung_mbps = self
            .cfg
            .video
            .bitrate(self.cfg.video.n_levels() - 1)
            .as_mbps_f64();
        let qoe_score = QoeScore::compute(&qoe, duration, top_rung_mbps);
        SessionReport {
            qoe,
            qoe_all: QoeSummary::from_player(&self.cfg.video, &self.player, 0.0),
            qoe_score,
            epochs: self.telemetry.map(|ts| ts.series),
            wifi_bytes: self.sim.path_bytes(PathId::WIFI),
            cell_bytes: self.sim.path_bytes(PathId::CELLULAR),
            energy,
            duration,
            chunks: self.chunks,
            records,
            scheduler_stats,
            player_events: self.player.events().to_vec(),
            degradation,
            lifecycle: self.lifecycle,
            origin: self.origin_stats,
            departed: self.departed,
            metrics: self.metrics.snapshot(),
            sim_profile: SimProfile {
                events_popped: self.sim.events_popped(),
                peak_queue_depth: self.sim.peak_queue_depth(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdash_dash::abr::AbrKind;
    use mpdash_dash::video::Video;
    use mpdash_trace::table1;

    /// A shortened Big Buck Bunny so debug-mode tests stay fast.
    fn short_video() -> Video {
        Video::new(
            "Big Buck Bunny (short)",
            &[0.58, 1.01, 1.47, 2.41, 3.94],
            SimDuration::from_secs(4),
            40,
        )
    }

    fn controlled(abr: AbrKind, mode: TransportMode) -> SessionConfig {
        SessionConfig::controlled(
            table1::synthetic_profile_pair(3.8, 3.0, 0.10, 42),
            abr,
            mode,
        )
        .with_video(short_video())
    }

    #[test]
    fn vanilla_festive_reaches_top_rate_with_heavy_cellular() {
        let report = StreamingSession::run(controlled(AbrKind::Festive, TransportMode::Vanilla));
        assert_eq!(report.qoe.stalls, 0);
        // Aggregate 6.8 Mbps sustains 3.94 Mbps: steady state at the top.
        assert!(
            report.qoe.mean_bitrate_mbps > 3.5,
            "mean bitrate {:.2}",
            report.qoe.mean_bitrate_mbps
        );
        // The §2.3 problem: a large share of bytes ride LTE for no reason.
        assert!(
            report.cell_fraction() > 0.25,
            "vanilla cellular share {:.2}",
            report.cell_fraction()
        );
    }

    #[test]
    fn mpdash_slashes_cellular_without_hurting_qoe() {
        let base = StreamingSession::run(controlled(AbrKind::Festive, TransportMode::Vanilla));
        let mp = StreamingSession::run(controlled(
            AbrKind::Festive,
            TransportMode::mpdash_rate_based(),
        ));
        assert_eq!(mp.qoe.stalls, 0, "MP-DASH must not stall");
        let saving = mp.cell_saving_vs(&base);
        assert!(
            saving > 0.4,
            "cellular saving {:.2} (mp {} vs base {})",
            saving,
            mp.cell_bytes,
            base.cell_bytes
        );
        // Negligible bitrate impact (paper: no reduction in the common
        // case).
        let reduction = mp.qoe.bitrate_reduction_vs(&base.qoe);
        assert!(
            reduction < 0.1,
            "bitrate reduction {:.3} too large",
            reduction
        );
        // Energy: W3.8/L3.0 is the paper's *hardest* energy case — WiFi
        // goodput sits just under the top bitrate, so cellular slivers
        // into most chunks and the LTE radio rarely sleeps (Table 5's
        // scenario-1 rows show only 7–12% energy savings at similar
        // headroom). Require "not materially worse"; the strong energy
        // wins appear in the high-WiFi-headroom tests and benches.
        assert!(
            mp.energy_saving_vs(&base) > -0.08,
            "energy {:.1} J vs {:.1} J",
            mp.energy.total_j(),
            base.energy.total_j()
        );
    }

    #[test]
    fn high_wifi_headroom_gives_large_energy_savings() {
        // The Library-like case (§7.3.3, Table 5 scenario 3): WiFi 17.8
        // Mbps dwarfs the 3.94 Mbps top bitrate, so MP-DASH keeps the
        // cellular subflow silent and the LTE radio asleep — the paper
        // reports 78–85% energy and 97%+ cellular savings there.
        let mk = |mode| {
            SessionConfig::controlled(
                table1::synthetic_profile_pair(17.8, 5.18, 0.12, 1),
                AbrKind::Festive,
                mode,
            )
            .with_video(short_video())
        };
        let base = StreamingSession::run(mk(TransportMode::Vanilla));
        let mp = StreamingSession::run(mk(TransportMode::mpdash_rate_based()));
        assert_eq!(mp.qoe.stalls, 0);
        assert!(
            mp.cell_saving_vs(&base) > 0.9,
            "cellular saving {:.2}",
            mp.cell_saving_vs(&base)
        );
        assert!(
            mp.energy_saving_vs(&base) > 0.3,
            "energy saving {:.2} (mp {:.1} J vs base {:.1} J)",
            mp.energy_saving_vs(&base),
            mp.energy.total_j(),
            base.energy.total_j()
        );
        // No bitrate penalty.
        assert!(mp.qoe.bitrate_reduction_vs(&base.qoe) < 0.05);
    }

    #[test]
    fn wifi_only_cannot_sustain_top_rate_at_2mbps() {
        let cfg = SessionConfig::controlled(
            table1::synthetic_profile_pair(2.0, 3.0, 0.10, 7),
            AbrKind::Festive,
            TransportMode::WifiOnly,
        )
        .with_video(short_video());
        let report = StreamingSession::run(cfg);
        assert_eq!(report.cell_bytes, 0, "wifi-only must not touch LTE");
        assert!(
            report.qoe.mean_bitrate_mbps < 2.0,
            "bitrate {:.2} should be limited by wifi",
            report.qoe.mean_bitrate_mbps
        );
    }

    #[test]
    fn telemetry_is_observe_only_and_epoch_totals_match_the_report() {
        use mpdash_obs::TelemetrySpec;
        let mk = || {
            controlled(AbrKind::Festive, TransportMode::mpdash_rate_based())
                .with_video(short_video())
        };
        let off = StreamingSession::run(mk());
        let on = StreamingSession::run(mk().with_telemetry(TelemetrySpec::seconds(2.0)));
        // The PR 3 invariant, extended: telemetry on vs off changes
        // zero artifact bytes.
        assert_eq!(
            off.summary_json().to_pretty(),
            on.summary_json().to_pretty(),
            "telemetry perturbed the artifact"
        );
        assert!(off.epochs.is_none());
        let series = on.epochs.expect("telemetry was enabled");
        // Per-epoch deltas sum exactly to the whole-session totals.
        assert_eq!(series.counter_total("wifi_bytes"), on.wifi_bytes);
        assert_eq!(series.counter_total("cell_bytes"), on.cell_bytes);
        assert_eq!(series.counter_total("chunks"), on.qoe_all.chunks as u64);
        assert!(series.n_epochs() > 1, "a session spans several epochs");
        // The composite QoE score is telemetry-independent.
        assert_eq!(off.qoe_score, on.qoe_score);
        assert!(on.qoe_score.composite > 0.0);
    }

    #[test]
    fn deterministic_given_same_config() {
        let a = StreamingSession::run(controlled(
            AbrKind::Festive,
            TransportMode::mpdash_rate_based(),
        ));
        let b = StreamingSession::run(controlled(
            AbrKind::Festive,
            TransportMode::mpdash_rate_based(),
        ));
        assert_eq!(a.cell_bytes, b.cell_bytes);
        assert_eq!(a.wifi_bytes, b.wifi_bytes);
        assert_eq!(a.qoe, b.qoe);
    }

    #[test]
    fn chunk_log_is_complete_and_ordered() {
        let report = StreamingSession::run(controlled(AbrKind::Gpac, TransportMode::Vanilla));
        assert_eq!(report.chunks.len(), 40);
        for (i, c) in report.chunks.iter().enumerate() {
            assert_eq!(c.index, i);
            assert!(c.completed > c.started);
            assert_eq!(c.body_dss.len(), c.size);
        }
        // Bodies are disjoint and ascending in the stream.
        for w in report.chunks.windows(2) {
            assert!(w[1].body_dss.start >= w[0].body_dss.end);
        }
    }

    #[test]
    fn server_error_burst_is_retried_and_recovered() {
        use mpdash_http::{LifecyclePolicy, ServerFaultScript};
        let faults =
            ServerFaultScript::new().error_burst(SimTime::from_secs(5), SimDuration::from_secs(2));
        let cfg = controlled(AbrKind::Festive, TransportMode::mpdash_rate_based())
            .with_server_faults(faults)
            .with_lifecycle(LifecyclePolicy::retry_only());
        let report = StreamingSession::run(cfg);
        assert_eq!(report.chunks.len(), 40, "every chunk must still arrive");
        assert!(
            report.lifecycle.retried > 0,
            "a 2s error burst must force at least one retry"
        );
        assert!(
            report.chunks.iter().any(|c| c.requests > 1),
            "retried chunks must log extra requests"
        );
        assert_eq!(report.lifecycle.abandoned, 0, "retry-only never cancels");
    }

    #[test]
    fn stalled_body_abandon_resume_beats_wait_forever() {
        use mpdash_http::{LifecyclePolicy, ServerFaultScript};
        // A response body that freezes for 30s mid-chunk: wait-forever
        // rides the whole stall out, the deadline-aware policy cancels
        // the doomed request and range-fetches the missing tail.
        let faults = || {
            ServerFaultScript::new().stalled_body(
                SimTime::from_secs(8),
                SimDuration::from_secs(1),
                SimDuration::from_secs(30),
                0.5,
            )
        };
        let mk = |policy| {
            controlled(AbrKind::Festive, TransportMode::mpdash_rate_based())
                .with_server_faults(faults())
                .with_lifecycle(policy)
        };
        let wait = StreamingSession::run(mk(LifecyclePolicy::wait_forever()));
        let resume = StreamingSession::run(mk(LifecyclePolicy::deadline_aware()));
        assert_eq!(wait.lifecycle.abandoned, 0);
        assert!(
            resume.lifecycle.abandoned >= 1,
            "the stalled body must trigger an abandonment"
        );
        assert_eq!(
            resume.lifecycle.resumed, resume.lifecycle.abandoned,
            "every abandonment must be followed by a byte-range resume"
        );
        assert!(
            resume.qoe_all.stall_time <= wait.qoe_all.stall_time,
            "resume stall {:.2}s vs wait {:.2}s",
            resume.qoe_all.stall_time.as_secs_f64(),
            wait.qoe_all.stall_time.as_secs_f64()
        );
        assert!(
            resume.duration < wait.duration,
            "abandon+resume must finish earlier ({:.1}s vs {:.1}s)",
            resume.duration.as_secs_f64(),
            wait.duration.as_secs_f64()
        );
        assert_eq!(resume.chunks.len(), 40, "no chunk may be lost to a cancel");
    }

    #[test]
    fn lifecycle_runs_stay_deterministic() {
        use mpdash_http::{LifecyclePolicy, ServerFaultScript};
        let mk = || {
            controlled(AbrKind::Festive, TransportMode::mpdash_rate_based())
                .with_server_faults(
                    ServerFaultScript::new()
                        .error_burst(SimTime::from_secs(3), SimDuration::from_secs(1))
                        .stalled_body(
                            SimTime::from_secs(10),
                            SimDuration::from_secs(1),
                            SimDuration::from_secs(30),
                            0.3,
                        ),
                )
                .with_lifecycle(LifecyclePolicy::deadline_aware())
        };
        let a = StreamingSession::run(mk());
        let b = StreamingSession::run(mk());
        assert_eq!(a.lifecycle, b.lifecycle);
        assert_eq!(a.summary_json().to_string(), b.summary_json().to_string());
    }

    #[test]
    fn throughput_override_unlocks_top_level_under_mpdash() {
        // At W3.8/L3.0 with MP-DASH mostly running WiFi-only, the
        // app-level measurement alone would cap FESTIVE near 3.6 Mbps and
        // it would sit at level 3 — the aggregate override (§5.2.1) is
        // what lets it pick level 4. Verify level 4 dominates.
        let report = StreamingSession::run(controlled(
            AbrKind::Festive,
            TransportMode::mpdash_rate_based(),
        ));
        let top = report
            .chunks
            .iter()
            .skip(report.chunks.len() / 3)
            .filter(|c| c.level == 4)
            .count();
        let counted = report.chunks.len() - report.chunks.len() / 3;
        assert!(
            top * 10 >= counted * 8,
            "level 4 in only {top}/{counted} steady chunks"
        );
    }

    #[test]
    fn steady_state_requests_are_paced_by_playback() {
        // Once the buffer is full, chunk starts must be ~one chunk
        // duration apart (the Figure 1 idle-gap pacing).
        let report = StreamingSession::run(controlled(AbrKind::Festive, TransportMode::Vanilla));
        let starts: Vec<f64> = report
            .chunks
            .iter()
            .skip(report.chunks.len() / 2)
            .map(|c| c.started.as_secs_f64())
            .collect();
        let gaps: Vec<f64> = starts.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(
            (mean - 4.0).abs() < 0.5,
            "steady-state request cadence {mean:.2}s vs 4s chunks"
        );
    }

    #[test]
    fn startup_chunks_bypass_then_schedule() {
        let report = StreamingSession::run(controlled(
            AbrKind::Festive,
            TransportMode::mpdash_rate_based(),
        ));
        // The first scheduled chunk appears only after some bypassed ones,
        // and once scheduling starts it persists (no flapping back to
        // long bypass runs).
        let first_scheduled = report
            .chunks
            .iter()
            .position(|c| c.deadline.is_some())
            .expect("some chunk gets scheduled");
        assert!(first_scheduled >= 1, "chunk 0 must bypass (empty buffer)");
        let tail_bypassed = report.chunks[first_scheduled..]
            .iter()
            .filter(|c| c.deadline.is_none())
            .count();
        assert!(
            tail_bypassed * 4 <= report.chunks.len() - first_scheduled,
            "bypasses after scheduling began: {tail_bypassed}"
        );
    }

    #[test]
    fn mpdash_grants_deadlines_once_buffer_builds() {
        let report = StreamingSession::run(controlled(
            AbrKind::Festive,
            TransportMode::mpdash_rate_based(),
        ));
        // Early chunks bypass (low buffer), later ones are scheduled.
        assert!(report.chunks[0].deadline.is_none(), "startup must bypass");
        let scheduled = report
            .chunks
            .iter()
            .filter(|c| c.deadline.is_some())
            .count();
        assert!(
            scheduled > report.chunks.len() / 2,
            "only {scheduled} chunks scheduled"
        );
        let stats = report.scheduler_stats;
        assert_eq!(
            stats.missed_deadlines, 0,
            "no deadline misses in the easy setting"
        );
        assert_eq!(stats.completed_transfers as usize, scheduled);
    }

    /// Three origins: the primary is cheap but blackholed mid-run, the
    /// backups carry small RTT penalties and stay healthy.
    fn dark_primary_pool() -> mpdash_http::OriginPoolConfig {
        use mpdash_http::{OriginPoolConfig, OriginSpec, ServerFaultScript};
        OriginPoolConfig::new(vec![
            OriginSpec::new("primary").with_faults(
                ServerFaultScript::new()
                    .blackhole(SimTime::from_secs(20), SimDuration::from_secs(80)),
            ),
            OriginSpec::new("backup-a").with_rtt_penalty(SimDuration::from_millis(20)),
            OriginSpec::new("backup-b").with_rtt_penalty(SimDuration::from_millis(40)),
        ])
    }

    #[test]
    fn healthy_pool_routes_everything_without_intervening() {
        use mpdash_http::{OriginPoolConfig, OriginSpec};
        let pool = OriginPoolConfig::new(vec![
            OriginSpec::new("a"),
            OriginSpec::new("b").with_rtt_penalty(SimDuration::from_millis(25)),
        ]);
        let cfg =
            controlled(AbrKind::Festive, TransportMode::mpdash_rate_based()).with_origins(pool);
        let report = StreamingSession::run(cfg);
        assert_eq!(report.chunks.len(), 40);
        assert_eq!(report.origin.routed, 40, "one routed request per chunk");
        assert_eq!(report.origin.failovers, 0);
        assert_eq!(report.origin.breaker_opens, 0);
        assert_eq!(report.origin.hedges, 0);
        assert_eq!(report.qoe.stalls, 0);
    }

    #[test]
    fn blackholed_primary_trips_breaker_and_fails_over() {
        use mpdash_http::LifecyclePolicy;
        let cfg = controlled(AbrKind::Festive, TransportMode::mpdash_rate_based())
            .with_origins(dark_primary_pool())
            .with_lifecycle(LifecyclePolicy::deadline_aware());
        let report = StreamingSession::run(cfg);
        assert_eq!(report.chunks.len(), 40, "failover must deliver every chunk");
        assert!(
            report.origin.breaker_opens >= 1,
            "repeated stalls on the dark origin must open its breaker"
        );
        assert!(
            report.origin.failovers >= 1,
            "at least one resume must land on a backup origin"
        );
        assert!(
            report.lifecycle.abandoned >= 1,
            "the blackhole must trigger abandonment"
        );
        // The backups keep the session moving: the 80s outage must not
        // translate into 80s of wall time.
        assert!(
            report.duration < SimDuration::from_secs(60 + 40 * 4),
            "failover session took {:.1}s",
            report.duration.as_secs_f64()
        );
    }

    #[test]
    fn hedged_fetch_escapes_the_blackhole_with_one_winner_per_race() {
        use mpdash_http::LifecyclePolicy;
        // Wait-forever lifecycle isolates the hedge: hedging is the only
        // escape hatch from the dark origin.
        let cfg = controlled(AbrKind::Festive, TransportMode::mpdash_rate_based())
            .with_origins(dark_primary_pool().with_hedge_quantile(0.5))
            .with_lifecycle(LifecyclePolicy::wait_forever());
        let report = StreamingSession::run(cfg);
        assert_eq!(report.chunks.len(), 40, "hedging must deliver every chunk");
        assert!(
            report.origin.hedges >= 1,
            "the blackholed primary must trigger a hedge race"
        );
        assert_eq!(
            report.origin.hedges,
            report.origin.hedge_wins_primary + report.origin.hedge_wins_hedge,
            "every hedge race must resolve to exactly one winner"
        );
        assert!(
            report.origin.hedge_wins_hedge >= 1,
            "a blackholed primary cannot win its race"
        );
        assert_eq!(
            report.lifecycle.abandoned, 0,
            "wait-forever never abandons; the hedge path must not count as one"
        );
    }

    #[test]
    fn shared_cache_serves_the_second_session_from_the_edge() {
        use mpdash_http::SharedSegmentCache;
        let cache = SharedSegmentCache::new(256 * 1024 * 1024);
        let mk = || {
            controlled(AbrKind::Festive, TransportMode::mpdash_rate_based())
                .with_cache(cache.clone())
        };
        let first = StreamingSession::run(mk());
        assert_eq!(first.origin.cache_hits, 0, "a cold cache cannot hit");
        assert!(
            first.origin.cache_insertions > 0,
            "completed chunks must populate the cache"
        );
        let second = StreamingSession::run(mk());
        assert!(
            second.origin.cache_hits > 0,
            "the warmed cache must serve repeat chunks ({} misses)",
            second.origin.cache_misses
        );
        assert_eq!(
            second.origin.cache_hits + second.origin.cache_misses,
            second.chunks.len() as u64,
            "every chunk request consults the cache exactly once"
        );
        assert_eq!(second.chunks.len(), 40);
        assert_eq!(second.qoe.stalls, 0);
        // Cached bytes are byte-identical to origin bytes: sizes in the
        // chunk log always match the manifest.
        let video = short_video();
        for c in &second.chunks {
            assert_eq!(c.size, video.chunk_size(c.index, c.level));
        }
    }

    #[test]
    fn pool_and_cache_runs_stay_deterministic() {
        use mpdash_http::{LifecyclePolicy, SharedSegmentCache};
        let mk = || {
            controlled(AbrKind::Festive, TransportMode::mpdash_rate_based())
                .with_origins(dark_primary_pool().with_hedge_quantile(0.6))
                .with_lifecycle(LifecyclePolicy::deadline_aware())
                .with_cache(SharedSegmentCache::new(64 * 1024 * 1024))
        };
        let a = StreamingSession::run(mk());
        let b = StreamingSession::run(mk());
        assert_eq!(a.origin, b.origin);
        assert_eq!(a.lifecycle, b.lifecycle);
        assert_eq!(a.summary_json().to_string(), b.summary_json().to_string());
    }
}
