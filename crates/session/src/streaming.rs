//! [`StreamingSession`]: one full DASH playback over the simulated
//! multipath testbed.
//!
//! Per chunk, the driver follows the paper's architecture (Figure 2):
//!
//! 1. The ABR picks the level — under MP-DASH, with the adapter's
//!    aggregate-throughput override in place of the app-level estimate.
//! 2. The video adapter decides whether MP-DASH is active for the chunk
//!    and computes its (possibly extended) deadline window (§5).
//! 3. The chunk is fetched over HTTP; while it downloads, a 50 ms
//!    progress tick feeds delivery samples into the Holt-Winters
//!    estimators and re-runs Algorithm 1, which toggles the cellular
//!    subflow through the MPTCP path mask (the DSS-bit signaling path).
//! 4. Completion feeds the player's buffer; the next request is paced by
//!    buffer space (the idle gaps of Figure 1 emerge from this, not from
//!    any explicit modelling).

use crate::config::{SessionConfig, TransportMode};
use crate::report::{ChunkLogEntry, DegradationMetrics, LifecycleStats, SessionReport, SimProfile};
use mpdash_core::deadline::SchedulerParams;
use mpdash_core::MpDashControl;
use mpdash_dash::abr::{Abr, AbrInput};
use mpdash_dash::adapter::{DeadlineDecision, VideoAdapter};
use mpdash_dash::player::Player;
use mpdash_dash::qoe::QoeSummary;
use mpdash_energy::session_energy;
use mpdash_http::{DssRange, HttpEvent, HttpLayer, LifecycleAction, RequestId, RequestTracker};
use mpdash_link::PathId;
use mpdash_mptcp::{MptcpConfig, MptcpSim, PathConfig, PathMask, StepOutcome};
use mpdash_obs::{MetricsRegistry, TraceEvent, Tracer};
use mpdash_sim::{Rate, SimDuration, SimTime};

/// Progress-tick period while a chunk is in flight (one Holt-Winters slot,
/// ~one testbed RTT — §7.2.2).
const TICK: SimDuration = SimDuration::from_millis(50);

const TICK_ID: u64 = u64::MAX - 1;
const WAKE_ID: u64 = u64::MAX - 2;
/// Timer for a pending lifecycle retry (seeded backoff after a 5xx).
const RETRY_ID: u64 = u64::MAX - 3;

struct CurrentChunk {
    index: usize,
    level: usize,
    /// Total body bytes the current request plan delivers (may shrink
    /// below the original chunk size after a downshifted resume).
    size: u64,
    started: SimTime,
    req_id: RequestId,
    /// Useful body bytes banked across every request for this chunk.
    body_received: u64,
    /// Bytes already banked before the current request was issued (the
    /// byte-range offset of the in-flight request).
    received_base: u64,
    deadline: Option<SimDuration>,
    /// Lifecycle state machine for the chunk's requests.
    tracker: RequestTracker,
    /// A cancel is in flight: body progress of the doomed tail must not
    /// count as chunk progress.
    cancelling: bool,
    /// HTTP requests issued for this chunk so far.
    requests: u32,
}

/// The streaming-session driver. See module docs.
pub struct StreamingSession {
    cfg: SessionConfig,
    sim: MptcpSim,
    http: HttpLayer,
    player: Player,
    abr: Box<dyn Abr>,
    adapter: Option<VideoAdapter>,
    control: Option<MpDashControl>,
    current: Option<CurrentChunk>,
    chunks: Vec<ChunkLogEntry>,
    last_chunk_throughput: Option<Rate>,
    record_cursor: usize,
    /// Per-path revival counters as of the last progress check; an
    /// increase means the subflow was re-established and the path's
    /// throughput history must be reset.
    seen_revivals: [u64; 2],
    /// Observe-only structured trace (config tracer, or the process-wide
    /// `MPDASH_TRACE` one when the config leaves it disabled).
    tracer: Tracer,
    /// Session-level counters/histograms, snapshotted into the report.
    metrics: MetricsRegistry,
    /// Request-lifecycle counters for the report.
    lifecycle: LifecycleStats,
}

impl StreamingSession {
    /// Run a session to completion and report.
    pub fn run(cfg: SessionConfig) -> SessionReport {
        let mut s = Self::start(cfg);
        s.drive();
        s.into_report()
    }

    /// Build the session and arm its first request (immediately, or via
    /// a wake timer at `start_offset` for staggered fleet clients). The
    /// caller then owns the event loop: either [`StreamingSession::drive`]
    /// to completion, or externally via [`StreamingSession::step_once`]
    /// interleaved with other sessions.
    pub fn start(cfg: SessionConfig) -> Self {
        let mut s = Self::new(cfg);
        if s.cfg.start_offset == SimDuration::ZERO {
            s.request_next(SimTime::ZERO);
        } else {
            let at = SimTime::ZERO + s.cfg.start_offset;
            s.sim.schedule_app_timer(at, WAKE_ID);
        }
        s
    }

    fn new(cfg: SessionConfig) -> Self {
        let mptcp_cfg = MptcpConfig {
            paths: vec![
                PathConfig::symmetric(cfg.wifi.clone()),
                PathConfig::symmetric(cfg.effective_cell_link()),
            ],
            scheduler: cfg.scheduler,
            cc: cfg.cc,
        };
        let tracer = cfg.tracer.or_env();
        let mut sim = MptcpSim::new(mptcp_cfg);
        sim.set_tracer(tracer.clone());
        if cfg.mode == TransportMode::WifiOnly {
            sim.set_initial_mask(PathMask::only(PathId::WIFI));
        }
        let abr = cfg.abr.build(&cfg.video);
        let (adapter, control) = match cfg.mode {
            TransportMode::MpDash { deadline, alpha } => {
                let adapter = match cfg.adapter_config {
                    Some(mut ac) => {
                        ac.mode = deadline;
                        VideoAdapter::with_config(cfg.abr.category(), ac)
                    }
                    None => VideoAdapter::new(cfg.abr.category(), deadline),
                };
                let costs = cfg.preference.costs();
                let control = MpDashControl::with_predictor(
                    costs.to_vec(),
                    vec![cfg.priors.0, cfg.priors.1],
                    SchedulerParams::with_alpha(alpha).with_debounce(cfg.enable_debounce),
                    cfg.sample_slot,
                    cfg.predictor,
                );
                (Some(adapter), Some(control))
            }
            _ => (None, None),
        };
        let mut player = Player::new(&cfg.video, cfg.buffer_capacity);
        player.set_tracer(tracer.clone());
        player.set_origin(SimTime::ZERO + cfg.start_offset);
        let mut http = HttpLayer::new().with_faults(cfg.server_faults.clone());
        http.set_tracer(tracer.clone());
        StreamingSession {
            sim,
            http,
            player,
            abr,
            adapter,
            control,
            current: None,
            chunks: Vec::new(),
            last_chunk_throughput: None,
            record_cursor: 0,
            seen_revivals: [0, 0],
            tracer,
            metrics: MetricsRegistry::new(),
            lifecycle: LifecycleStats::default(),
            cfg,
        }
    }

    fn apply_enabled(&mut self, enabled: &[bool]) {
        let mut mask = PathMask::NONE;
        for (i, &e) in enabled.iter().enumerate() {
            if e {
                mask = mask.with(PathId(i as u8));
            }
        }
        self.sim.set_desired_mask(mask);
    }

    fn request_next(&mut self, now: SimTime) {
        let Some(index) = self.player.next_chunk_index() else {
            return;
        };
        self.player.advance_to(now);
        let override_throughput = self.control.as_ref().map(|c| c.aggregate_throughput());
        let input = AbrInput {
            buffer: self.player.buffer(),
            buffer_capacity: self.player.capacity(),
            last_level: self.player.history().last().map(|r| r.level),
            last_chunk_throughput: self.last_chunk_throughput,
            override_throughput,
        };
        let level = self.abr.select(&self.cfg.video, &input);
        let size = self.cfg.video.chunk_size(index, level);
        self.tracer.emit_with(now, || TraceEvent::AbrChoice {
            chunk: index,
            level,
            estimate_mbps: override_throughput
                .or(input.last_chunk_throughput)
                .map(|r| r.as_mbps_f64())
                .unwrap_or(0.0),
        });

        let mut deadline = None;
        if let (Some(adapter), Some(control)) = (self.adapter.as_ref(), self.control.as_mut()) {
            let estimate = control.aggregate_throughput();
            match adapter.decide(
                &self.cfg.video,
                self.abr.as_ref(),
                level,
                size,
                self.player.buffer(),
                self.player.capacity(),
                estimate,
            ) {
                DeadlineDecision::Schedule(window) => {
                    let enabled = control.mp_dash_enable(now, size, window).to_vec();
                    self.apply_enabled(&enabled);
                    deadline = Some(window);
                    self.metrics.inc("deadline_granted");
                    self.tracer.emit_with(now, || TraceEvent::DeadlineGranted {
                        chunk: index,
                        size,
                        window_s: window.as_secs_f64(),
                    });
                }
                DeadlineDecision::Bypass => {
                    let enabled = control.mp_dash_disable().to_vec();
                    self.apply_enabled(&enabled);
                    self.metrics.inc("deadline_bypassed");
                    self.tracer
                        .emit_with(now, || TraceEvent::DeadlineBypassed { chunk: index });
                }
            }
        }

        let req_id = self.http.get(&mut self.sim, size);
        let tracker = RequestTracker::new(self.cfg.lifecycle, index, now, size, deadline);
        self.current = Some(CurrentChunk {
            index,
            level,
            size,
            started: now,
            req_id,
            body_received: 0,
            received_base: 0,
            deadline,
            tracker,
            cancelling: false,
            requests: 1,
        });
        self.sim.schedule_app_timer(now + TICK, TICK_ID);
    }

    /// Feed newly received packets into the estimators and re-run the
    /// scheduling decision.
    fn progress_check(&mut self, now: SimTime) {
        let records = self.sim.records();
        let new = &records[self.record_cursor..];
        if let Some(control) = self.control.as_mut() {
            for r in new {
                control.on_bytes(r.path.index(), r.t, r.len);
            }
        }
        self.record_cursor = records.len();
        // A revived subflow came back as a *new* association: drop the
        // old association's throughput history before the next decision,
        // so Algorithm 1 starts from the prior instead of a pre-fault
        // (or blackout-dragged) estimate.
        for (i, path) in [PathId::WIFI, PathId::CELLULAR].into_iter().enumerate() {
            let revivals = self.sim.subflow_revivals(path);
            if revivals > self.seen_revivals[i] {
                self.seen_revivals[i] = revivals;
                if let Some(control) = self.control.as_mut() {
                    control.on_path_reset(i, now);
                }
            }
        }
        let received = self.current.as_ref().map(|c| c.body_received);
        let busy = [
            self.sim.path_in_flight(PathId::WIFI) > 0,
            self.sim.path_in_flight(PathId::CELLULAR) > 0,
        ];
        if let (Some(control), Some(received)) = (self.control.as_mut(), received) {
            if let Some(enabled) = control.on_progress(now, received, &busy) {
                // Trace the toggle with the feasibility inputs Algorithm 1
                // used: the preferred-path estimate versus bytes left in
                // the window.
                let wifi_estimate_mbps = control.estimate(0).as_mbps_f64();
                self.metrics.inc("scheduler_toggles");
                if self.tracer.enabled() {
                    let (size, window_s, elapsed_s) = self
                        .current
                        .as_ref()
                        .map(|c| {
                            (
                                c.size,
                                c.deadline.map(|d| d.as_secs_f64()).unwrap_or(0.0),
                                now.saturating_since(c.started).as_secs_f64(),
                            )
                        })
                        .unwrap_or((0, 0.0, 0.0));
                    let cell_enabled = enabled.get(1).copied().unwrap_or(false);
                    self.tracer.emit_with(now, || TraceEvent::SchedulerToggle {
                        cell_enabled,
                        wifi_estimate_mbps,
                        received,
                        size,
                        window_s,
                        elapsed_s,
                    });
                }
                self.apply_enabled(&enabled);
            }
        }
    }

    fn finish_chunk(&mut self, now: SimTime, body_dss: DssRange) {
        let cur = self.current.take().expect("completion without a chunk");
        let fetch = now.saturating_since(cur.started);
        let dl = fetch.as_secs_f64();
        if dl > 0.0 {
            self.last_chunk_throughput =
                Some(Rate::from_mbps_f64(cur.size as f64 * 8.0 / dl / 1e6));
        }
        self.metrics.inc("chunks_fetched");
        self.metrics
            .observe("chunk_fetch_ms", fetch.as_millis_f64() as u64);
        self.metrics.observe("chunk_bytes", cur.size);
        self.tracer.emit_with(now, || TraceEvent::ChunkFetched {
            chunk: cur.index,
            level: cur.level,
            size: cur.size,
            started_s: cur.started.as_secs_f64(),
        });
        if let Some(window) = cur.deadline {
            let margin = window.as_secs_f64() - dl;
            let chunk = cur.index;
            if margin >= 0.0 {
                self.metrics.inc("deadline_hits");
                self.tracer.emit_with(now, || TraceEvent::DeadlineHit {
                    chunk,
                    margin_s: margin,
                });
            } else {
                self.metrics.inc("deadline_misses");
                self.tracer.emit_with(now, || TraceEvent::DeadlineMissed {
                    chunk,
                    overrun_s: -margin,
                });
            }
        }
        if let Some(control) = self.control.as_mut() {
            // Final progress report completes the transfer (reverts the
            // transport to vanilla until the next chunk's decision).
            if let Some(enabled) = control.on_progress(now, cur.size, &[false, false]) {
                self.apply_enabled(&enabled);
            }
        }
        self.player
            .on_chunk_complete(now, cur.level, cur.size, cur.started);
        self.chunks.push(ChunkLogEntry {
            index: cur.index,
            level: cur.level,
            size: cur.size,
            started: cur.started,
            completed: now,
            body_dss,
            deadline: cur.deadline,
            requests: cur.requests,
        });
        // Pace the next request on buffer space.
        if self.player.has_space() {
            self.request_next(now);
        } else {
            let wait = self.player.time_until_space(now);
            self.sim.schedule_app_timer(now + wait, WAKE_ID);
        }
    }

    /// React to one client-side HTTP event (from a delivery or from a
    /// cancel processed at the server).
    fn handle_http_event(&mut self, t: SimTime, ev: HttpEvent) {
        let ours = |cur: &CurrentChunk, id: RequestId| cur.req_id == id;
        match ev {
            HttpEvent::BodyProgress { id, received, .. } => {
                if let Some(cur) = self.current.as_mut() {
                    if ours(cur, id) && !cur.cancelling {
                        cur.body_received = cur.received_base + received;
                        cur.tracker.on_progress(t, cur.body_received);
                    }
                }
            }
            HttpEvent::Complete { id, body_dss } => {
                let is_ours = self.current.as_ref().map(|c| ours(c, id)).unwrap_or(false);
                if is_ours {
                    self.finish_chunk(t, body_dss);
                }
            }
            HttpEvent::Error { id } => {
                let is_ours = self.current.as_ref().map(|c| ours(c, id)).unwrap_or(false);
                if is_ours {
                    self.on_request_error(t);
                }
            }
            HttpEvent::Aborted { id, received, .. } => {
                let is_ours = self.current.as_ref().map(|c| ours(c, id)).unwrap_or(false);
                if is_ours {
                    self.on_request_aborted(t, received);
                }
            }
            HttpEvent::HeaderReceived { .. } => {}
        }
    }

    /// The current request got a 5xx: schedule the seeded-backoff retry.
    fn on_request_error(&mut self, now: SimTime) {
        let cur = self.current.as_mut().expect("error without a chunk");
        self.metrics.inc("request_errors");
        match cur.tracker.on_error(now) {
            LifecycleAction::Retry {
                at,
                attempt,
                backoff,
            } => {
                let chunk = cur.index;
                self.lifecycle.retried += 1;
                self.metrics.inc("requests_retried");
                self.tracer.emit_with(now, || TraceEvent::RequestRetried {
                    chunk,
                    attempt: attempt as u64,
                    backoff_s: backoff.as_secs_f64(),
                });
                self.sim.schedule_app_timer(at, RETRY_ID);
            }
            // on_error always answers with a retry (wait-forever retries
            // immediately so a bounded burst can never wedge a session).
            other => unreachable!("on_error returned {other:?}"),
        }
    }

    /// The cancelled request drained: account the wasted tail and issue
    /// the byte-range resume (optionally downshifted by the ABR).
    fn on_request_aborted(&mut self, now: SimTime, request_received: u64) {
        let cur = self.current.as_mut().expect("abort without a chunk");
        let final_received = cur.received_base + request_received;
        let acct = cur.tracker.on_aborted(final_received);
        self.lifecycle.wasted_bytes += acct.wasted;
        self.metrics.add("wasted_bytes", acct.wasted);
        let resume_from = acct.resume_from;

        // Optionally re-invoke the ABR with the partial-download state:
        // the tail may be fetched at a lower level, scaled by the
        // fraction of the chunk still missing.
        if self.cfg.lifecycle.resume_downshift && cur.size > 0 {
            let index = cur.index;
            let input = AbrInput {
                buffer: self.player.buffer(),
                buffer_capacity: self.player.capacity(),
                last_level: Some(cur.level),
                last_chunk_throughput: self.last_chunk_throughput,
                override_throughput: self.control.as_ref().map(|c| c.aggregate_throughput()),
            };
            let picked = self.abr.select(&self.cfg.video, &input);
            let cur = self.current.as_mut().expect("abort without a chunk");
            if picked < cur.level {
                let remaining_frac = (cur.size - resume_from) as f64 / cur.size as f64;
                let tail_full = self.cfg.video.chunk_size(index, picked);
                let tail = (tail_full as f64 * remaining_frac).ceil() as u64;
                cur.level = picked;
                cur.size = resume_from + tail;
            }
        }

        let cur = self.current.as_mut().expect("abort without a chunk");
        let (index, size, level) = (cur.index, cur.size, cur.level);
        let req_id = self.http.get_range(&mut self.sim, size, resume_from);
        let cur = self.current.as_mut().expect("abort without a chunk");
        cur.req_id = req_id;
        cur.received_base = resume_from;
        cur.body_received = resume_from;
        cur.cancelling = false;
        cur.requests += 1;
        cur.tracker.on_resumed(now, size);
        self.lifecycle.resumed += 1;
        self.metrics.inc("requests_resumed");
        self.tracer.emit_with(now, || TraceEvent::RequestResumed {
            chunk: index,
            from: resume_from,
            size,
            level,
        });
    }

    /// Per-tick lifecycle decision: feed the tracker the feasibility
    /// verdict and act on a timeout-driven abandonment.
    fn lifecycle_poll(&mut self, now: SimTime) {
        if self.cfg.lifecycle.is_passive() {
            return;
        }
        let Some(cur) = self.current.as_ref() else {
            return;
        };
        if cur.cancelling {
            return;
        }
        // Feasibility: can the remaining bytes make the deadline at the
        // current aggregate estimate? Only *deep* infeasibility (2× the
        // remaining window) counts, and only before the deadline — past
        // it, restarting the tail can no longer help.
        let infeasible = match (self.control.as_ref(), cur.deadline) {
            (Some(control), Some(window)) => {
                let deadline_at = cur.started + window;
                now < deadline_at && {
                    let remaining = cur.size.saturating_sub(cur.body_received);
                    let budget = deadline_at.saturating_since(now);
                    control.aggregate_throughput().time_to_send(remaining) > budget * 2
                }
            }
            _ => false,
        };
        let cur = self.current.as_mut().expect("checked above");
        match cur.tracker.poll(now, infeasible) {
            LifecycleAction::Abandon { cause, received } => {
                let (chunk, size, req_id, started) = (cur.index, cur.size, cur.req_id, cur.started);
                cur.cancelling = true;
                self.lifecycle.timeouts += 1;
                self.lifecycle.abandoned += 1;
                self.metrics.inc("request_timeouts");
                self.metrics.inc("requests_abandoned");
                let after_s = now.saturating_since(started).as_secs_f64();
                self.tracer.emit_with(now, || TraceEvent::RequestTimeout {
                    chunk,
                    cause,
                    after_s,
                });
                self.tracer.emit_with(now, || TraceEvent::RequestAbandoned {
                    chunk,
                    received,
                    size,
                });
                self.http.cancel(&mut self.sim, req_id);
            }
            LifecycleAction::Retry { .. } => {
                unreachable!("poll never answers with a retry")
            }
            LifecycleAction::None => {}
        }
    }

    /// The backoff timer fired: re-issue the request for the missing
    /// range.
    fn on_retry_fire(&mut self, now: SimTime) {
        let Some(cur) = self.current.as_mut() else {
            return;
        };
        let (size, from) = (cur.size, cur.body_received);
        let req_id = self.http.get_range(&mut self.sim, size, from);
        let cur = self.current.as_mut().expect("checked above");
        cur.req_id = req_id;
        cur.received_base = from;
        cur.requests += 1;
        cur.tracker.on_retry_fire(now);
    }

    /// Time of this session's next pending event, if any (fleet
    /// interleaving).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.sim.peek_time()
    }

    /// True once every chunk is downloaded and the transport has drained.
    /// A finished session schedules no further shared-bottleneck packets.
    pub fn finished(&self) -> bool {
        self.player.download_complete() && self.sim.quiescent()
    }

    /// Route one of this session's paths through a shared bottleneck.
    /// Must be called before the first request is transmitted (i.e.
    /// right after [`StreamingSession::start`], before any stepping).
    pub fn attach_shared(
        &mut self,
        path: PathId,
        bottleneck: &mpdash_link::SharedBottleneck,
    ) -> mpdash_link::FlowId {
        self.sim.attach_shared(path, bottleneck)
    }

    /// Feed back a shared-bottleneck departure for one of this session's
    /// packets (see [`MptcpSim::on_shared_departure`]).
    pub fn on_shared_departure(
        &mut self,
        path: PathId,
        ticket: mpdash_link::Ticket,
        depart_at: SimTime,
    ) {
        self.sim.on_shared_departure(path, ticket, depart_at);
    }

    /// Process one event from this session's queue; `false` when the
    /// queue is empty.
    pub fn step_once(&mut self) -> bool {
        let Some((t, outcome)) = self.sim.step() else {
            return false;
        };
        match outcome {
            StepOutcome::Transport { newly_delivered } => {
                if newly_delivered > 0 {
                    for ev in self.http.on_delivered(newly_delivered) {
                        self.handle_http_event(t, ev);
                    }
                    // Mid-download decision on fresh bytes.
                    if self.current.is_some() {
                        self.progress_check(t);
                    }
                }
            }
            StepOutcome::AppTimer { id: TICK_ID } => {
                if self.current.is_some() {
                    self.player.advance_to(t);
                    self.progress_check(t);
                    self.lifecycle_poll(t);
                    self.sim.schedule_app_timer(t + TICK, TICK_ID);
                }
            }
            StepOutcome::AppTimer { id: WAKE_ID } => {
                self.request_next(t);
            }
            StepOutcome::AppTimer { id: RETRY_ID } => {
                self.on_retry_fire(t);
            }
            StepOutcome::AppTimer { id } => {
                // Deferred server sends (fault-delayed response parts).
                self.http.on_app_timer(&mut self.sim, id);
            }
            StepOutcome::ServerMsg { id } => {
                for ev in self.http.on_server_msg(&mut self.sim, id) {
                    self.handle_http_event(t, ev);
                }
            }
        }
        true
    }

    fn drive(&mut self) {
        while !self.finished() && self.step_once() {}
        assert!(
            self.player.download_complete(),
            "session ended with {}/{} chunks",
            self.player.chunks_downloaded(),
            self.cfg.video.n_chunks()
        );
    }

    /// Final QoE/energy/report accounting. Callers outside
    /// [`StreamingSession::run`] (the fleet loop) must only call this
    /// once [`StreamingSession::finished`] holds.
    pub fn into_report(mut self) -> SessionReport {
        // Let the remaining buffer play out for final QoE accounting.
        // All session clocks measure from the player's origin (zero for
        // standalone runs, the stagger offset for fleet clients).
        let origin = self.player.origin();
        let startup = self.player.startup_delay().unwrap_or(SimDuration::ZERO);
        let playout_end =
            origin + startup + self.cfg.video.total_duration() + self.player.stall_time();
        let end = playout_end.max(self.sim.now());
        self.player.advance_to(end);
        let duration = end.saturating_since(origin);

        let records = self.sim.records().to_vec();
        let wifi_pkts: Vec<(SimTime, u64)> = records
            .iter()
            .filter(|r| r.path == PathId::WIFI)
            .map(|r| (r.t, r.len))
            .collect();
        let cell_pkts: Vec<(SimTime, u64)> = records
            .iter()
            .filter(|r| r.path == PathId::CELLULAR)
            .map(|r| (r.t, r.len))
            .collect();
        let energy = session_energy(&self.cfg.device, &wifi_pkts, &cell_pkts, duration);

        // Degradation accounting: a chunk is "outage-bridged" when the
        // preferred path contributed under 10% of its body bytes while
        // the other path carried it — cellular covering a WiFi fault
        // window (or vice versa under CellularFirst).
        let costs = self.cfg.preference.costs();
        let preferred = if costs[0] <= costs[1] {
            PathId::WIFI
        } else {
            PathId::CELLULAR
        };
        let mut outage_bridged_chunks = 0u64;
        for c in &self.chunks {
            let (lo, hi) = (c.body_dss.start, c.body_dss.end);
            let mut pref = 0u64;
            let mut other = 0u64;
            for r in records.iter().filter(|r| r.dss >= lo && r.dss < hi) {
                if r.path == preferred {
                    pref += r.len;
                } else {
                    other += r.len;
                }
            }
            if other > 0 && pref * 10 < pref + other {
                outage_bridged_chunks += 1;
            }
        }
        let scheduler_stats = self.control.as_ref().map(|c| c.stats()).unwrap_or_default();
        let degradation = DegradationMetrics {
            deadline_misses: scheduler_stats.missed_deadlines,
            outage_bridged_chunks,
            subflow_failures: self.sim.subflow_failures(PathId::WIFI)
                + self.sim.subflow_failures(PathId::CELLULAR),
            subflow_revivals: self.sim.subflow_revivals(PathId::WIFI)
                + self.sim.subflow_revivals(PathId::CELLULAR),
        };

        // Fold the end-of-run aggregates into the registry so the
        // snapshot is self-contained (counters registered during the run
        // keep their earlier positions).
        self.metrics
            .add("scheduler_toggle_total", scheduler_stats.toggles);
        self.metrics
            .add("subflow_failures", degradation.subflow_failures);
        self.metrics
            .add("subflow_revivals", degradation.subflow_revivals);
        self.metrics.add("stalls", self.player.stalls());
        self.metrics
            .add("lifecycle_timeouts", self.lifecycle.timeouts);
        self.metrics
            .add("lifecycle_abandoned", self.lifecycle.abandoned);
        self.metrics
            .add("lifecycle_resumed", self.lifecycle.resumed);
        self.metrics
            .add("lifecycle_retried", self.lifecycle.retried);
        self.tracer.flush();

        SessionReport {
            qoe: QoeSummary::from_player(&self.cfg.video, &self.player, 0.2),
            qoe_all: QoeSummary::from_player(&self.cfg.video, &self.player, 0.0),
            wifi_bytes: self.sim.path_bytes(PathId::WIFI),
            cell_bytes: self.sim.path_bytes(PathId::CELLULAR),
            energy,
            duration,
            chunks: self.chunks,
            records,
            scheduler_stats,
            player_events: self.player.events().to_vec(),
            degradation,
            lifecycle: self.lifecycle,
            metrics: self.metrics.snapshot(),
            sim_profile: SimProfile {
                events_popped: self.sim.events_popped(),
                peak_queue_depth: self.sim.peak_queue_depth(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdash_dash::abr::AbrKind;
    use mpdash_dash::video::Video;
    use mpdash_trace::table1;

    /// A shortened Big Buck Bunny so debug-mode tests stay fast.
    fn short_video() -> Video {
        Video::new(
            "Big Buck Bunny (short)",
            &[0.58, 1.01, 1.47, 2.41, 3.94],
            SimDuration::from_secs(4),
            40,
        )
    }

    fn controlled(abr: AbrKind, mode: TransportMode) -> SessionConfig {
        SessionConfig::controlled(
            table1::synthetic_profile_pair(3.8, 3.0, 0.10, 42),
            abr,
            mode,
        )
        .with_video(short_video())
    }

    #[test]
    fn vanilla_festive_reaches_top_rate_with_heavy_cellular() {
        let report = StreamingSession::run(controlled(AbrKind::Festive, TransportMode::Vanilla));
        assert_eq!(report.qoe.stalls, 0);
        // Aggregate 6.8 Mbps sustains 3.94 Mbps: steady state at the top.
        assert!(
            report.qoe.mean_bitrate_mbps > 3.5,
            "mean bitrate {:.2}",
            report.qoe.mean_bitrate_mbps
        );
        // The §2.3 problem: a large share of bytes ride LTE for no reason.
        assert!(
            report.cell_fraction() > 0.25,
            "vanilla cellular share {:.2}",
            report.cell_fraction()
        );
    }

    #[test]
    fn mpdash_slashes_cellular_without_hurting_qoe() {
        let base = StreamingSession::run(controlled(AbrKind::Festive, TransportMode::Vanilla));
        let mp = StreamingSession::run(controlled(
            AbrKind::Festive,
            TransportMode::mpdash_rate_based(),
        ));
        assert_eq!(mp.qoe.stalls, 0, "MP-DASH must not stall");
        let saving = mp.cell_saving_vs(&base);
        assert!(
            saving > 0.4,
            "cellular saving {:.2} (mp {} vs base {})",
            saving,
            mp.cell_bytes,
            base.cell_bytes
        );
        // Negligible bitrate impact (paper: no reduction in the common
        // case).
        let reduction = mp.qoe.bitrate_reduction_vs(&base.qoe);
        assert!(
            reduction < 0.1,
            "bitrate reduction {:.3} too large",
            reduction
        );
        // Energy: W3.8/L3.0 is the paper's *hardest* energy case — WiFi
        // goodput sits just under the top bitrate, so cellular slivers
        // into most chunks and the LTE radio rarely sleeps (Table 5's
        // scenario-1 rows show only 7–12% energy savings at similar
        // headroom). Require "not materially worse"; the strong energy
        // wins appear in the high-WiFi-headroom tests and benches.
        assert!(
            mp.energy_saving_vs(&base) > -0.08,
            "energy {:.1} J vs {:.1} J",
            mp.energy.total_j(),
            base.energy.total_j()
        );
    }

    #[test]
    fn high_wifi_headroom_gives_large_energy_savings() {
        // The Library-like case (§7.3.3, Table 5 scenario 3): WiFi 17.8
        // Mbps dwarfs the 3.94 Mbps top bitrate, so MP-DASH keeps the
        // cellular subflow silent and the LTE radio asleep — the paper
        // reports 78–85% energy and 97%+ cellular savings there.
        let mk = |mode| {
            SessionConfig::controlled(
                table1::synthetic_profile_pair(17.8, 5.18, 0.12, 1),
                AbrKind::Festive,
                mode,
            )
            .with_video(short_video())
        };
        let base = StreamingSession::run(mk(TransportMode::Vanilla));
        let mp = StreamingSession::run(mk(TransportMode::mpdash_rate_based()));
        assert_eq!(mp.qoe.stalls, 0);
        assert!(
            mp.cell_saving_vs(&base) > 0.9,
            "cellular saving {:.2}",
            mp.cell_saving_vs(&base)
        );
        assert!(
            mp.energy_saving_vs(&base) > 0.3,
            "energy saving {:.2} (mp {:.1} J vs base {:.1} J)",
            mp.energy_saving_vs(&base),
            mp.energy.total_j(),
            base.energy.total_j()
        );
        // No bitrate penalty.
        assert!(mp.qoe.bitrate_reduction_vs(&base.qoe) < 0.05);
    }

    #[test]
    fn wifi_only_cannot_sustain_top_rate_at_2mbps() {
        let cfg = SessionConfig::controlled(
            table1::synthetic_profile_pair(2.0, 3.0, 0.10, 7),
            AbrKind::Festive,
            TransportMode::WifiOnly,
        )
        .with_video(short_video());
        let report = StreamingSession::run(cfg);
        assert_eq!(report.cell_bytes, 0, "wifi-only must not touch LTE");
        assert!(
            report.qoe.mean_bitrate_mbps < 2.0,
            "bitrate {:.2} should be limited by wifi",
            report.qoe.mean_bitrate_mbps
        );
    }

    #[test]
    fn deterministic_given_same_config() {
        let a = StreamingSession::run(controlled(
            AbrKind::Festive,
            TransportMode::mpdash_rate_based(),
        ));
        let b = StreamingSession::run(controlled(
            AbrKind::Festive,
            TransportMode::mpdash_rate_based(),
        ));
        assert_eq!(a.cell_bytes, b.cell_bytes);
        assert_eq!(a.wifi_bytes, b.wifi_bytes);
        assert_eq!(a.qoe, b.qoe);
    }

    #[test]
    fn chunk_log_is_complete_and_ordered() {
        let report = StreamingSession::run(controlled(AbrKind::Gpac, TransportMode::Vanilla));
        assert_eq!(report.chunks.len(), 40);
        for (i, c) in report.chunks.iter().enumerate() {
            assert_eq!(c.index, i);
            assert!(c.completed > c.started);
            assert_eq!(c.body_dss.len(), c.size);
        }
        // Bodies are disjoint and ascending in the stream.
        for w in report.chunks.windows(2) {
            assert!(w[1].body_dss.start >= w[0].body_dss.end);
        }
    }

    #[test]
    fn server_error_burst_is_retried_and_recovered() {
        use mpdash_http::{LifecyclePolicy, ServerFaultScript};
        let faults =
            ServerFaultScript::new().error_burst(SimTime::from_secs(5), SimDuration::from_secs(2));
        let cfg = controlled(AbrKind::Festive, TransportMode::mpdash_rate_based())
            .with_server_faults(faults)
            .with_lifecycle(LifecyclePolicy::retry_only());
        let report = StreamingSession::run(cfg);
        assert_eq!(report.chunks.len(), 40, "every chunk must still arrive");
        assert!(
            report.lifecycle.retried > 0,
            "a 2s error burst must force at least one retry"
        );
        assert!(
            report.chunks.iter().any(|c| c.requests > 1),
            "retried chunks must log extra requests"
        );
        assert_eq!(report.lifecycle.abandoned, 0, "retry-only never cancels");
    }

    #[test]
    fn stalled_body_abandon_resume_beats_wait_forever() {
        use mpdash_http::{LifecyclePolicy, ServerFaultScript};
        // A response body that freezes for 30s mid-chunk: wait-forever
        // rides the whole stall out, the deadline-aware policy cancels
        // the doomed request and range-fetches the missing tail.
        let faults = || {
            ServerFaultScript::new().stalled_body(
                SimTime::from_secs(8),
                SimDuration::from_secs(1),
                SimDuration::from_secs(30),
                0.5,
            )
        };
        let mk = |policy| {
            controlled(AbrKind::Festive, TransportMode::mpdash_rate_based())
                .with_server_faults(faults())
                .with_lifecycle(policy)
        };
        let wait = StreamingSession::run(mk(LifecyclePolicy::wait_forever()));
        let resume = StreamingSession::run(mk(LifecyclePolicy::deadline_aware()));
        assert_eq!(wait.lifecycle.abandoned, 0);
        assert!(
            resume.lifecycle.abandoned >= 1,
            "the stalled body must trigger an abandonment"
        );
        assert_eq!(
            resume.lifecycle.resumed, resume.lifecycle.abandoned,
            "every abandonment must be followed by a byte-range resume"
        );
        assert!(
            resume.qoe_all.stall_time <= wait.qoe_all.stall_time,
            "resume stall {:.2}s vs wait {:.2}s",
            resume.qoe_all.stall_time.as_secs_f64(),
            wait.qoe_all.stall_time.as_secs_f64()
        );
        assert!(
            resume.duration < wait.duration,
            "abandon+resume must finish earlier ({:.1}s vs {:.1}s)",
            resume.duration.as_secs_f64(),
            wait.duration.as_secs_f64()
        );
        assert_eq!(resume.chunks.len(), 40, "no chunk may be lost to a cancel");
    }

    #[test]
    fn lifecycle_runs_stay_deterministic() {
        use mpdash_http::{LifecyclePolicy, ServerFaultScript};
        let mk = || {
            controlled(AbrKind::Festive, TransportMode::mpdash_rate_based())
                .with_server_faults(
                    ServerFaultScript::new()
                        .error_burst(SimTime::from_secs(3), SimDuration::from_secs(1))
                        .stalled_body(
                            SimTime::from_secs(10),
                            SimDuration::from_secs(1),
                            SimDuration::from_secs(30),
                            0.3,
                        ),
                )
                .with_lifecycle(LifecyclePolicy::deadline_aware())
        };
        let a = StreamingSession::run(mk());
        let b = StreamingSession::run(mk());
        assert_eq!(a.lifecycle, b.lifecycle);
        assert_eq!(a.summary_json().to_string(), b.summary_json().to_string());
    }

    #[test]
    fn throughput_override_unlocks_top_level_under_mpdash() {
        // At W3.8/L3.0 with MP-DASH mostly running WiFi-only, the
        // app-level measurement alone would cap FESTIVE near 3.6 Mbps and
        // it would sit at level 3 — the aggregate override (§5.2.1) is
        // what lets it pick level 4. Verify level 4 dominates.
        let report = StreamingSession::run(controlled(
            AbrKind::Festive,
            TransportMode::mpdash_rate_based(),
        ));
        let top = report
            .chunks
            .iter()
            .skip(report.chunks.len() / 3)
            .filter(|c| c.level == 4)
            .count();
        let counted = report.chunks.len() - report.chunks.len() / 3;
        assert!(
            top * 10 >= counted * 8,
            "level 4 in only {top}/{counted} steady chunks"
        );
    }

    #[test]
    fn steady_state_requests_are_paced_by_playback() {
        // Once the buffer is full, chunk starts must be ~one chunk
        // duration apart (the Figure 1 idle-gap pacing).
        let report = StreamingSession::run(controlled(AbrKind::Festive, TransportMode::Vanilla));
        let starts: Vec<f64> = report
            .chunks
            .iter()
            .skip(report.chunks.len() / 2)
            .map(|c| c.started.as_secs_f64())
            .collect();
        let gaps: Vec<f64> = starts.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(
            (mean - 4.0).abs() < 0.5,
            "steady-state request cadence {mean:.2}s vs 4s chunks"
        );
    }

    #[test]
    fn startup_chunks_bypass_then_schedule() {
        let report = StreamingSession::run(controlled(
            AbrKind::Festive,
            TransportMode::mpdash_rate_based(),
        ));
        // The first scheduled chunk appears only after some bypassed ones,
        // and once scheduling starts it persists (no flapping back to
        // long bypass runs).
        let first_scheduled = report
            .chunks
            .iter()
            .position(|c| c.deadline.is_some())
            .expect("some chunk gets scheduled");
        assert!(first_scheduled >= 1, "chunk 0 must bypass (empty buffer)");
        let tail_bypassed = report.chunks[first_scheduled..]
            .iter()
            .filter(|c| c.deadline.is_none())
            .count();
        assert!(
            tail_bypassed * 4 <= report.chunks.len() - first_scheduled,
            "bypasses after scheduling began: {tail_bypassed}"
        );
    }

    #[test]
    fn mpdash_grants_deadlines_once_buffer_builds() {
        let report = StreamingSession::run(controlled(
            AbrKind::Festive,
            TransportMode::mpdash_rate_based(),
        ));
        // Early chunks bypass (low buffer), later ones are scheduled.
        assert!(report.chunks[0].deadline.is_none(), "startup must bypass");
        let scheduled = report
            .chunks
            .iter()
            .filter(|c| c.deadline.is_some())
            .count();
        assert!(
            scheduled > report.chunks.len() / 2,
            "only {scheduled} chunks scheduled"
        );
        let stats = report.scheduler_stats;
        assert_eq!(
            stats.missed_deadlines, 0,
            "no deadline misses in the easy setting"
        );
        assert_eq!(stats.completed_transfers as usize, scheduled);
    }
}
