//! Property: the batch runner's output is bit-identical regardless of
//! worker count. One worker is the sequential reference; any parallel
//! pool must serialize every report to exactly the same bytes, because
//! each job is a pure function of its config and collection preserves
//! input order.

use mpdash_dash::abr::AbrKind;
use mpdash_dash::video::Video;
use mpdash_session::{run_batch_with, seed_jobs, BatchResult, Job, SessionConfig, TransportMode};
use mpdash_sim::SimDuration;
use proptest::prelude::*;

fn tiny_cfg(wifi_mbps: f64, mode: TransportMode) -> SessionConfig {
    SessionConfig::controlled_mbps(wifi_mbps, 2.0, AbrKind::Festive, mode).with_video(Video::new(
        "tiny",
        &[0.5, 1.0],
        SimDuration::from_secs(2),
        4,
    ))
}

/// Every observable byte of a batch: labels plus the full JSON summary of
/// each report, in order.
fn serialize(results: &[BatchResult]) -> String {
    results
        .iter()
        .map(|r| {
            format!(
                "{}\n{}",
                r.label,
                r.session().expect("session job").summary_json().to_pretty()
            )
        })
        .collect::<Vec<_>>()
        .join("\n---\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn parallel_batch_serializes_bit_identically(
        n_jobs in 1usize..7,
        workers in 2usize..9,
        base_seed in any::<u64>(),
        wifi in 1.0f64..6.0,
        mpdash_mode in any::<bool>(),
    ) {
        let mode = if mpdash_mode {
            TransportMode::mpdash_rate_based()
        } else {
            TransportMode::Vanilla
        };
        let mk = || {
            let mut jobs: Vec<Job> = (0..n_jobs)
                .map(|i| Job::session(format!("j{i}"), tiny_cfg(wifi + 0.37 * i as f64, mode)))
                .collect();
            seed_jobs(base_seed, &mut jobs);
            jobs
        };
        let seq = run_batch_with(mk(), 1);
        let par = run_batch_with(mk(), workers);
        prop_assert_eq!(seq.len(), par.len());
        prop_assert_eq!(serialize(&seq), serialize(&par));
    }
}
