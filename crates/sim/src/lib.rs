//! Deterministic discrete-event simulation core for the MP-DASH workspace.
//!
//! Every other crate in this repository builds on three things defined here:
//!
//! * **Virtual time** — [`SimTime`] and [`SimDuration`], nanosecond-precision
//!   newtypes over `u64`. Nothing in the simulation ever consults the wall
//!   clock, which is what makes a whole streaming session bit-reproducible
//!   from a seed (the paper's energy methodology — replaying one captured
//!   trace through several device power models — depends on exactly this
//!   property, see §7.1 of the paper).
//! * **An event queue** — [`EventQueue`], a priority queue ordered by
//!   `(time, insertion sequence)` so that simultaneous events pop in a
//!   deterministic order.
//! * **Rates and series** — [`Rate`] converts between bandwidth, bytes and
//!   transmission time without floating-point drift in the hot path, and
//!   [`Series`] records `(time, value)` samples for the figures the
//!   benchmark harness regenerates.
//!
//! The design intentionally avoids an async runtime: per the smoltcp-style
//! guidance for event-driven network code, a single-threaded poll loop over
//! virtual time is simpler, faster for simulation, and fully deterministic.
//!
//! ```
//! use mpdash_sim::{EventQueue, Rate, SimDuration, SimTime};
//!
//! // A tiny deterministic event loop.
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_millis(30), "ack");
//! q.schedule(SimTime::from_millis(10), "data");
//! assert_eq!(q.pop(), Some((SimTime::from_millis(10), "data")));
//! assert_eq!(q.now(), SimTime::from_millis(10));
//!
//! // Exact rate arithmetic: 1500 bytes at 12 Mbps serialize in 1 ms.
//! let r = Rate::from_mbps(12);
//! assert_eq!(r.time_to_send(1500), SimDuration::from_millis(1));
//! assert_eq!(r.bytes_in(SimDuration::from_secs(1)), 1_500_000);
//! ```

pub mod par;
pub mod queue;
pub mod rate;
pub mod rng;
pub mod series;
pub mod time;

pub use par::{default_workers, par_map};
pub use queue::EventQueue;
pub use rate::Rate;
pub use rng::{derive_seed, Prng};
pub use series::Series;
pub use time::{SimDuration, SimTime};
