//! Order-preserving parallel map over scoped threads.
//!
//! This is the primitive under the experiment batch runner: a fixed pool
//! of `std::thread::scope` workers pulls item indices from a shared
//! atomic counter, writes each result into the slot matching its input
//! index, and the caller gets results back in input order — so a
//! parallel run is observationally identical to the sequential one as
//! long as `f` itself is a pure function of its item. No work stealing,
//! no channels, no dependencies beyond `std`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers to use when the caller does not pin one: the
/// `MPDASH_WORKERS` environment variable if set and non-zero, otherwise
/// the machine's available parallelism.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("MPDASH_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on `workers` threads, preserving input order.
///
/// With `workers == 1` the items run on the calling thread in order —
/// the reference behaviour the parallel path is tested against. A panic
/// in `f` propagates to the caller (scoped threads join on scope exit).
pub fn par_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers == 1 {
        return items.iter().map(&f).collect();
    }

    let n = items.len();
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Buffer locally; take the lock once per worker, not per
                // item, so the pool never serializes on result stores.
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                collected.lock().expect("a worker panicked").extend(local);
            });
        }
    });

    let mut collected = collected.into_inner().expect("a worker panicked");
    collected.sort_by_key(|&(i, _)| i);
    debug_assert!(collected.iter().enumerate().all(|(k, &(i, _))| k == i));
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(items.clone(), 8, |&x| x * x);
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn one_worker_equals_many() {
        let items: Vec<u64> = (0..57).collect();
        let seq = par_map(items.clone(), 1, |&x| {
            x.wrapping_mul(0x9E3779B9).rotate_left(7)
        });
        let par = par_map(items, 5, |&x| x.wrapping_mul(0x9E3779B9).rotate_left(7));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = par_map(Vec::<u64>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items() {
        let out = par_map(vec![1u64, 2], 16, |&x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn workers_env_parsing() {
        // Only exercise the fallback path (the env var is not set in
        // tests); the parse path is covered by the batch runner's own
        // integration tests.
        assert!(default_workers() >= 1);
    }
}
