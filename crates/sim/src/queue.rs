//! [`EventQueue`]: the deterministic priority queue at the heart of the
//! discrete-event simulation.
//!
//! Events are ordered by `(fire time, insertion sequence)`. The sequence
//! number breaks ties between events scheduled for the same instant in
//! *insertion order*, which is what makes simulations reproducible: two runs
//! that schedule the same events in the same order pop them in the same
//! order, regardless of the payload type's own ordering (the payload does
//! not even need to implement `Ord`).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    cancelled: bool,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic future-event list.
///
/// `pop` advances the queue's notion of *now* to the popped event's time;
/// scheduling an event in the past is clamped to *now* rather than
/// panicking (a component reacting to an event may legitimately want
/// "immediately", which is the current instant).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    // Number of live (non-cancelled) entries, so len() is O(1) and honest.
    live: usize,
    // Profiling counters: how much work this queue has seen. Observed
    // only — they never influence ordering, so instrumented and plain
    // runs are identical.
    popped: u64,
    peak_live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            live: 0,
            popped: 0,
            peak_live: 0,
        }
    }

    /// The current simulation instant: the time of the most recently popped
    /// event (zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` to fire at `at` (clamped to `now` if in the
    /// past). Returns a handle usable with [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            cancelled: false,
            payload,
        });
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        EventId(seq)
    }

    /// Lazily cancel a scheduled event. Cancellation is O(n) in the worst
    /// case here because we must find the entry; for the simulation's usage
    /// pattern (rare cancellations of timers) this is fine, and the heap
    /// itself skips cancelled entries on pop.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // BinaryHeap has no in-place mutation; rebuild only when we find it.
        let mut found = false;
        let entries: Vec<Entry<E>> = self.heap.drain().collect();
        self.heap = entries
            .into_iter()
            .map(|mut e| {
                if e.seq == id.0 && !e.cancelled {
                    e.cancelled = true;
                    found = true;
                }
                e
            })
            .collect();
        if found {
            self.live -= 1;
        }
        found
    }

    /// Pop the earliest live event, advancing the clock to its fire time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if entry.cancelled {
                continue;
            }
            self.live -= 1;
            self.popped += 1;
            debug_assert!(entry.at >= self.now, "event queue time went backwards");
            self.now = entry.at;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Fire time of the earliest live event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // Cancelled entries may sit at the top; peek must skip them without
        // mutating, so clone-free scan of the top is not possible with
        // BinaryHeap. We conservatively report the top entry's time, which
        // is a lower bound; `pop` remains exact. To keep peek exact we
        // instead look through the heap's iterator for the minimum live
        // entry (O(n), used only in tests and idle checks).
        self.heap
            .iter()
            .filter(|e| !e.cancelled)
            .map(|e| e.at)
            .min()
    }

    /// Number of live events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total live events popped over the queue's lifetime.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// High-water mark of live events (peak queue depth).
    pub fn peak_len(&self) -> usize {
        self.peak_live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn clock_advances_and_past_events_clamp() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "later");
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs(5));
        assert_eq!(q.now(), SimTime::from_secs(5));
        // Scheduling in the past clamps to now.
        q.schedule(SimTime::from_secs(1), "past");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5));
        assert_eq!(e, "past");
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn cancel_stress_preserves_order_of_survivors() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..200u64)
            .map(|i| q.schedule(SimTime::from_millis(i), i))
            .collect();
        // Cancel every third event.
        for (i, id) in ids.iter().enumerate() {
            if i % 3 == 0 {
                assert!(q.cancel(*id));
            }
        }
        assert_eq!(q.len(), 200 - 67);
        let mut last = None;
        let mut popped = 0;
        while let Some((t, v)) = q.pop() {
            assert!(v % 3 != 0, "cancelled event {v} escaped");
            if let Some(prev) = last {
                assert!(t >= prev);
            }
            last = Some(t);
            popped += 1;
        }
        assert_eq!(popped, 133);
    }

    #[test]
    fn profiling_counters_track_pops_and_peak_depth() {
        let mut q = EventQueue::new();
        for i in 0..4u64 {
            q.schedule(SimTime::from_secs(i), i);
        }
        assert_eq!(q.peak_len(), 4);
        let a = q.schedule(SimTime::from_secs(9), 9);
        assert_eq!(q.peak_len(), 5);
        q.cancel(a);
        while q.pop().is_some() {}
        // Cancelled events never count as popped.
        assert_eq!(q.popped(), 4);
        assert_eq!(q.peak_len(), 5, "peak survives draining");
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1u32);
        let (t1, _) = q.pop().unwrap();
        q.schedule(t1 + crate::SimDuration::from_secs(1), 2u32);
        q.schedule(t1 + crate::SimDuration::from_millis(500), 3u32);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }
}
