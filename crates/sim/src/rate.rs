//! [`Rate`]: a bandwidth value with exact byte/time conversions.
//!
//! Internally stored as **bits per second** in a `u64`. The two conversions
//! every transport and link component needs — "how long does it take to
//! serialize N bytes at this rate" and "how many bytes fit in this window" —
//! are implemented with 128-bit integer arithmetic so repeated conversions
//! do not accumulate floating-point drift over a multi-minute session.

use crate::time::{SimDuration, NANOS_PER_SEC};
use std::fmt;
use std::ops::{Add, Sub};

/// A bandwidth, stored as whole bits per second.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rate(u64);

impl Rate {
    /// Zero bandwidth (a blacked-out path).
    pub const ZERO: Rate = Rate(0);

    /// Construct from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Rate(bps)
    }

    /// Construct from kilobits per second (10^3 bits).
    pub const fn from_kbps(kbps: u64) -> Self {
        Rate(kbps * 1_000)
    }

    /// Construct from megabits per second (10^6 bits).
    pub const fn from_mbps(mbps: u64) -> Self {
        Rate(mbps * 1_000_000)
    }

    /// Construct from fractional megabits per second. Negative or
    /// non-finite inputs collapse to zero, so trace noise cannot produce a
    /// nonsensical rate.
    pub fn from_mbps_f64(mbps: f64) -> Self {
        if !mbps.is_finite() || mbps <= 0.0 {
            return Rate::ZERO;
        }
        Rate((mbps * 1e6).round() as u64)
    }

    /// Whole bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Fractional megabits per second.
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when the rate is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Time needed to serialize `bytes` at this rate.
    ///
    /// Returns [`SimDuration::MAX`] for a zero rate: a blacked-out link
    /// never finishes a transmission, and callers treat `MAX` as "park this
    /// packet until the rate changes".
    pub fn time_to_send(self, bytes: u64) -> SimDuration {
        if self.0 == 0 {
            return SimDuration::MAX;
        }
        let bits = bytes as u128 * 8;
        let nanos = bits * NANOS_PER_SEC as u128 / self.0 as u128;
        if nanos >= u64::MAX as u128 {
            SimDuration::MAX
        } else {
            SimDuration::from_nanos(nanos as u64)
        }
    }

    /// Bytes that can be carried in `window` at this rate (floor).
    pub fn bytes_in(self, window: SimDuration) -> u64 {
        let bits = self.0 as u128 * window.as_nanos() as u128 / NANOS_PER_SEC as u128;
        let bytes = bits / 8;
        if bytes >= u64::MAX as u128 {
            u64::MAX
        } else {
            bytes as u64
        }
    }

    /// Scale the rate by a non-negative factor (used by synthetic bandwidth
    /// profiles applying multiplicative noise).
    pub fn mul_f64(self, k: f64) -> Rate {
        if !k.is_finite() || k <= 0.0 {
            return Rate::ZERO;
        }
        let scaled = self.0 as f64 * k;
        if scaled >= u64::MAX as f64 {
            Rate(u64::MAX)
        } else {
            Rate(scaled.round() as u64)
        }
    }

    /// Saturating sum of two rates (aggregate multipath capacity).
    pub fn saturating_add(self, other: Rate) -> Rate {
        Rate(self.0.saturating_add(other.0))
    }

    /// The smaller of two rates.
    pub fn min(self, other: Rate) -> Rate {
        Rate(self.0.min(other.0))
    }

    /// The larger of two rates.
    pub fn max(self, other: Rate) -> Rate {
        Rate(self.0.max(other.0))
    }
}

impl Add for Rate {
    type Output = Rate;
    fn add(self, rhs: Rate) -> Rate {
        Rate(self.0.saturating_add(rhs.0))
    }
}

impl Sub for Rate {
    type Output = Rate;
    fn sub(self, rhs: Rate) -> Rate {
        Rate(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}Mbps", self.as_mbps_f64())
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} Mbps", self.as_mbps_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn conversions() {
        assert_eq!(Rate::from_mbps(4).as_bps(), 4_000_000);
        assert_eq!(Rate::from_kbps(700).as_bps(), 700_000);
        assert_eq!(Rate::from_mbps_f64(3.8).as_bps(), 3_800_000);
        assert!((Rate::from_bps(2_500_000).as_mbps_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(Rate::from_mbps_f64(-1.0), Rate::ZERO);
        assert_eq!(Rate::from_mbps_f64(f64::NAN), Rate::ZERO);
        assert!(Rate::ZERO.is_zero());
    }

    #[test]
    fn time_to_send_exact() {
        // 1500 bytes at 12 Mbps = 12000 bits / 12e6 bps = 1 ms exactly.
        let r = Rate::from_mbps(12);
        assert_eq!(r.time_to_send(1500), SimDuration::from_millis(1));
        // Zero rate parks forever.
        assert_eq!(Rate::ZERO.time_to_send(1), SimDuration::MAX);
    }

    #[test]
    fn bytes_in_window() {
        // 8 Mbps for 1 s = 1 MB.
        let r = Rate::from_mbps(8);
        assert_eq!(r.bytes_in(SimDuration::from_secs(1)), 1_000_000);
        assert_eq!(r.bytes_in(SimDuration::ZERO), 0);
        assert_eq!(Rate::ZERO.bytes_in(SimDuration::from_secs(100)), 0);
    }

    #[test]
    fn send_then_fit_round_trip() {
        // bytes_in(time_to_send(n)) should recover n (within rounding).
        for &bytes in &[1u64, 17, 1460, 5_000_000] {
            let r = Rate::from_mbps_f64(3.8);
            let t = r.time_to_send(bytes);
            let back = r.bytes_in(t);
            assert!(
                back <= bytes && bytes - back <= 1,
                "bytes={bytes} back={back}"
            );
        }
    }

    #[test]
    fn arithmetic() {
        let a = Rate::from_mbps(3);
        let b = Rate::from_mbps(5);
        assert_eq!(a + b, Rate::from_mbps(8));
        assert_eq!(b - a, Rate::from_mbps(2));
        assert_eq!(a - b, Rate::ZERO); // saturating
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Rate::from_mbps(4).mul_f64(0.5), Rate::from_mbps(2));
        assert_eq!(Rate::from_mbps(4).mul_f64(-1.0), Rate::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Rate::from_mbps_f64(3.8)), "3.80 Mbps");
    }
}
