//! [`Prng`]: the workspace's deterministic pseudo-random number generator.
//!
//! Everything stochastic in the simulation (link loss, synthetic traces)
//! draws from this one generator so that a whole experiment is a pure
//! function of its seeds — the property the deterministic batch runner
//! and the energy-replay methodology both rely on. The core is SplitMix64
//! (Steele et al., "Fast splittable pseudorandom number generators"),
//! which passes BigCrush for this output width, is seedable from any
//! `u64` including 0, and — crucially — is *splittable*: [`derive_seed`]
//! turns one base seed plus a stream index into statistically independent
//! child seeds, so per-job seeds in a batch never correlate.

/// SplitMix64 generator. Construction from equal seeds yields equal
/// streams on every platform; there is no global state anywhere.
#[derive(Clone, Debug)]
pub struct Prng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Prng {
    /// A generator seeded with `seed`. Equal seeds ⇒ equal streams.
    pub fn new(seed: u64) -> Self {
        Prng { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`. `n` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift range reduction (Lemire); the bias at u64 width
        // is immeasurably small for simulation purposes.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Derive the seed for stream `stream` of the family rooted at `base`.
///
/// Used by the batch runner to give every job an independent seed from
/// one experiment-level base seed: `derive_seed(base, job_index)`.
/// Distinct `(base, stream)` pairs map to well-separated seeds under the
/// SplitMix64 finalizer.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    mix64(base ^ stream.wrapping_mul(GOLDEN_GAMMA).rotate_left(17))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Prng::new(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Prng::new(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Prng::new(43);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = Prng::new(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn next_below_covers_range() {
        let mut r = Prng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.next_below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let s0 = derive_seed(99, 0);
        let s1 = derive_seed(99, 1);
        let s0b = derive_seed(99, 0);
        assert_eq!(s0, s0b);
        assert_ne!(s0, s1);
        // Streams from different bases diverge too.
        assert_ne!(derive_seed(98, 0), s0);
        // Children are not trivially correlated with the base.
        assert_ne!(s0, 99);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Prng::new(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
