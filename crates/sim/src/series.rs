//! [`Series`]: a time-stamped scalar recording, used by every experiment
//! that regenerates one of the paper's time-series figures (Figures 1, 5,
//! 6, 11) and by the analysis tool's throughput plots.

use crate::time::{SimDuration, SimTime};

/// An append-only `(time, value)` series with windowed aggregation helpers.
#[derive(Clone, Debug, Default)]
pub struct Series {
    name: String,
    points: Vec<(SimTime, f64)>,
}

impl Series {
    /// A new, empty series labelled `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The label given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a sample. Samples must be pushed in non-decreasing time
    /// order; out-of-order pushes are debug-asserted since the simulation
    /// clock is monotone.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(last, _)| t >= last),
            "series samples must be time-ordered"
        );
        self.points.push((t, v));
    }

    /// All samples, time-ordered.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Sum of all sample values.
    pub fn sum(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).sum()
    }

    /// Arithmetic mean of sample values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.sum() / self.points.len() as f64)
        }
    }

    /// Maximum sample value, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Re-bucket into fixed windows of `width`, producing per-window sums.
    ///
    /// This is how raw per-packet byte counts become the Mbps curves of the
    /// paper's throughput figures: sum bytes per window, then scale. Empty
    /// windows are emitted with a zero sum so the output is gap-free from
    /// the first to the last sample.
    pub fn bucket_sums(&self, width: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!width.is_zero(), "bucket width must be positive");
        let Some(&(first, _)) = self.points.first() else {
            return Vec::new();
        };
        let &(last, _) = self.points.last().unwrap();
        let w = width.as_nanos();
        let start_bucket = first.as_nanos() / w;
        let end_bucket = last.as_nanos() / w;
        let n = (end_bucket - start_bucket + 1) as usize;
        let mut out: Vec<(SimTime, f64)> = (0..n)
            .map(|i| (SimTime::from_nanos((start_bucket + i as u64) * w), 0.0))
            .collect();
        for &(t, v) in &self.points {
            let idx = (t.as_nanos() / w - start_bucket) as usize;
            out[idx].1 += v;
        }
        out
    }

    /// Treating the samples as byte counts, compute per-window throughput
    /// in Mbps (window sums scaled by 8 / width).
    pub fn throughput_mbps(&self, window: SimDuration) -> Vec<(SimTime, f64)> {
        let secs = window.as_secs_f64();
        self.bucket_sums(window)
            .into_iter()
            .map(|(t, bytes)| (t, bytes * 8.0 / secs / 1e6))
            .collect()
    }
}

/// Empirical CDF of a set of scalar observations, for the paper's Figures 9
/// and 10 (distributions over locations/experiments).
#[derive(Clone, Debug, Default)]
pub struct Cdf {
    values: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// An empty distribution.
    pub fn new() -> Self {
        Cdf::default()
    }

    /// Add one observation. Non-finite values are rejected with a debug
    /// assertion and skipped in release builds.
    pub fn push(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "CDF observation must be finite");
        if v.is_finite() {
            self.values.push(v);
            self.sorted = false;
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
            self.sorted = true;
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Quantile by linear interpolation between order statistics;
    /// `q` is clamped to `[0, 1]`. `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.values.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.values[lo] * (1.0 - frac) + self.values[hi] * frac)
    }

    /// Fraction of observations `<= x`.
    pub fn fraction_at_most(&mut self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.values.partition_point(|&v| v <= x);
        n as f64 / self.values.len() as f64
    }

    /// Arithmetic mean of the observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Several quantiles at once (each as [`Cdf::quantile`]), in the
    /// order requested — the summarization the structured experiment
    /// results persist instead of raw observation lists.
    pub fn quantiles(&mut self, qs: &[f64]) -> Vec<(f64, f64)> {
        qs.iter()
            .map(|&q| (q, self.quantile(q).unwrap_or(f64::NAN)))
            .collect()
    }

    /// The full `(value, cumulative fraction)` staircase, one step per
    /// observation, suitable for plotting.
    pub fn steps(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.values.len();
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn series_basic_stats() {
        let mut s = Series::new("bytes");
        s.push(t(0.1), 10.0);
        s.push(t(0.5), 20.0);
        s.push(t(1.2), 30.0);
        assert_eq!(s.name(), "bytes");
        assert_eq!(s.len(), 3);
        assert_eq!(s.sum(), 60.0);
        assert_eq!(s.mean(), Some(20.0));
        assert_eq!(s.max(), Some(30.0));
    }

    #[test]
    fn empty_series() {
        let s = Series::new("x");
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.max(), None);
        assert!(s.bucket_sums(SimDuration::from_secs(1)).is_empty());
    }

    #[test]
    fn bucketing_includes_empty_windows() {
        let mut s = Series::new("x");
        s.push(t(0.2), 1.0);
        s.push(t(0.3), 2.0);
        s.push(t(2.5), 4.0); // second 1 is empty
        let b = s.bucket_sums(SimDuration::from_secs(1));
        assert_eq!(b.len(), 3);
        assert_eq!(b[0].1, 3.0);
        assert_eq!(b[1].1, 0.0);
        assert_eq!(b[2].1, 4.0);
    }

    #[test]
    fn throughput_scaling() {
        // 1 MB in one 1-second window = 8 Mbps.
        let mut s = Series::new("bytes");
        s.push(t(0.5), 1_000_000.0);
        let th = s.throughput_mbps(SimDuration::from_secs(1));
        assert_eq!(th.len(), 1);
        assert!((th[0].1 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_quantiles() {
        let mut c = Cdf::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            c.push(v);
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.quantile(1.0), Some(4.0));
        assert_eq!(c.quantile(0.5), Some(2.5));
        assert_eq!(c.fraction_at_most(2.0), 0.5);
        assert_eq!(c.fraction_at_most(0.5), 0.0);
        assert_eq!(c.fraction_at_most(10.0), 1.0);
        assert_eq!(c.mean(), Some(2.5));
        assert_eq!(
            c.quantiles(&[0.0, 0.5, 1.0]),
            vec![(0.0, 1.0), (0.5, 2.5), (1.0, 4.0)]
        );
        assert!(Cdf::new().mean().is_none());
    }

    #[test]
    fn cdf_steps_monotone() {
        let mut c = Cdf::new();
        for v in [0.9, 0.1, 0.5] {
            c.push(v);
        }
        let steps = c.steps();
        assert_eq!(steps.len(), 3);
        assert!(steps
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(steps.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_rejects_nan_in_release() {
        let mut c = Cdf::new();
        c.push(1.0);
        // NaN push is debug-asserted; in tests (debug) we cannot exercise
        // the skip path, so just confirm finite pushes count.
        assert_eq!(c.len(), 1);
        assert_eq!(c.quantile(0.5), Some(1.0));
    }
}
