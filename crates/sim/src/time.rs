//! Virtual time: [`SimTime`] (an instant) and [`SimDuration`] (a span).
//!
//! Both are nanosecond-precision `u64` newtypes. A `u64` of nanoseconds
//! covers ~584 years of simulated time, far beyond any experiment here
//! (sessions are minutes long). All arithmetic is checked in debug builds
//! via the standard `+`/`-` operator semantics on `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds per second, as used throughout the time types.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant on the simulation clock, measured in nanoseconds since the
/// start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far"
    /// sentinel for deadlines that are never expected to fire.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds since the epoch.
    ///
    /// Negative or non-finite inputs saturate to zero; this keeps trace
    /// ingestion (which may carry tiny negative rounding noise) total.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future (callers comparing estimates against schedules rely on
    /// this never panicking).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span; "no deadline" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds, saturating at zero for negative
    /// or non-finite inputs.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative float (used for the scheduler's `α·D` target
    /// window). Saturates at the representable maximum.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        if !k.is_finite() || k <= 0.0 {
            return SimDuration::ZERO;
        }
        let scaled = self.0 as f64 * k;
        if scaled >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(scaled.round() as u64)
        }
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug if `rhs > self`; use [`SimTime::saturating_since`]
    /// when the ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimTime::from_micros(250).as_nanos(), 250_000);
        assert_eq!(SimDuration::from_secs(2).as_millis_f64(), 2000.0);
    }

    #[test]
    fn fractional_seconds_round() {
        let t = SimTime::from_secs_f64(0.123_456_789);
        assert_eq!(t.as_nanos(), 123_456_789);
        assert!((t.as_secs_f64() - 0.123456789).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn instant_arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!(t + d, SimTime::from_secs(13));
        assert_eq!(t - d, SimTime::from_secs(7));
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.8), SimDuration::from_secs(8));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_millis(2500));
    }

    #[test]
    fn ordering_and_min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimDuration::from_secs(1).max(SimDuration::from_secs(2)),
            SimDuration::from_secs(2)
        );
    }

    #[test]
    fn saturation_at_extremes() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::MAX + SimDuration::from_secs(1),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).mul_f64(f64::MAX),
            SimDuration::MAX
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250s");
        assert_eq!(format!("{:?}", SimTime::from_secs(1)), "t=1.000000s");
    }
}
