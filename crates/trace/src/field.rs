//! The 33-location field corpus (§2.2, §7.3.3, Table 5).
//!
//! The paper visits 33 public places in three U.S. states and groups them
//! into three scenarios by whether the open WiFi can sustain the highest
//! bitrate of a 1080p video (~4 Mbps):
//!
//! * **Scenario 1** (64% → 21 locations): WiFi alone *never* sustains it.
//! * **Scenario 2** (15% → 5): WiFi sometimes can, but is unstable.
//! * **Scenario 3** (21% → 7): WiFi almost always sustains it.
//!
//! Seven locations appear by name in Table 5 with measured WiFi/LTE
//! bandwidths and RTTs; those are pinned here exactly. The remaining 26
//! are synthesized to fill the scenario split, with bandwidths drawn
//! (deterministically) from each scenario's plausible range and a
//! variability/fade character matching the scenario description. This is
//! the documented substitution for the authors' unpublished measurement
//! campaign (DESIGN.md).

use crate::synth::SynthSpec;
use mpdash_link::{BandwidthProfile, LinkConfig};
use mpdash_sim::SimDuration;

/// Which §2.2 scenario a location belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Scenario {
    /// WiFi never sustains the top bitrate.
    WifiNeverSufficient,
    /// WiFi sometimes sustains it, unstably.
    WifiSometimesSufficient,
    /// WiFi almost always sustains it.
    WifiAlwaysSufficient,
}

impl Scenario {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::WifiNeverSufficient => "S1",
            Scenario::WifiSometimesSufficient => "S2",
            Scenario::WifiAlwaysSufficient => "S3",
        }
    }
}

/// One field-study location.
#[derive(Clone, Debug)]
pub struct Location {
    /// Display name (Table 5 name, or a synthesized descriptor).
    pub name: String,
    /// Scenario classification.
    pub scenario: Scenario,
    /// Mean WiFi bandwidth, Mbps.
    pub wifi_mbps: f64,
    /// WiFi RTT.
    pub wifi_rtt: SimDuration,
    /// Mean LTE bandwidth, Mbps.
    pub lte_mbps: f64,
    /// LTE RTT.
    pub lte_rtt: SimDuration,
    /// WiFi coefficient of variation (σ / mean).
    pub wifi_cv: f64,
    /// Whether the WiFi exhibits occasional deep fades.
    pub wifi_fades: bool,
    /// Corpus seed for this location's profiles.
    pub seed: u64,
}

impl Location {
    #[allow(clippy::too_many_arguments)] // table constructor: one argument
                                         // per Table 5 column keeps the corpus literals readable
    fn named(
        name: &str,
        scenario: Scenario,
        wifi_mbps: f64,
        wifi_rtt_ms: f64,
        lte_mbps: f64,
        lte_rtt_ms: f64,
        wifi_cv: f64,
        wifi_fades: bool,
        seed: u64,
    ) -> Self {
        Location {
            name: name.to_string(),
            scenario,
            wifi_mbps,
            wifi_rtt: SimDuration::from_secs_f64(wifi_rtt_ms / 1_000.0),
            lte_mbps,
            lte_rtt: SimDuration::from_secs_f64(lte_rtt_ms / 1_000.0),
            wifi_cv,
            wifi_fades,
            seed,
        }
    }

    /// The same location visited at a different time of day: identical
    /// means/RTTs, fresh instantaneous conditions (the paper re-visits
    /// each site "multiple times at different times of a day", §7.3.3).
    pub fn revisit(&self, visit: u64) -> Location {
        let mut l = self.clone();
        l.seed = self
            .seed
            .wrapping_add(visit.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if visit > 0 {
            l.name = format!("{} (visit {})", self.name, visit + 1);
        }
        l
    }

    /// The WiFi bandwidth profile (10-minute looped trace).
    pub fn wifi_profile(&self) -> BandwidthProfile {
        let mut spec = SynthSpec::new(self.wifi_mbps, self.wifi_cv, self.seed);
        if self.wifi_fades {
            spec = spec.with_fades(0.0008, 0.1, SimDuration::from_secs(3));
        }
        spec.profile()
    }

    /// The LTE bandwidth profile (commercial LTE: moderate variability).
    pub fn lte_profile(&self) -> BandwidthProfile {
        SynthSpec::new(self.lte_mbps, 0.15, self.seed ^ 0xC0FF_EE00).profile()
    }

    /// Link configurations for a streaming session at this location.
    pub fn links(&self) -> (LinkConfig, LinkConfig) {
        let wifi = LinkConfig::constant(1.0, self.wifi_rtt / 2).with_profile(self.wifi_profile());
        let lte = LinkConfig::constant(1.0, self.lte_rtt / 2).with_profile(self.lte_profile());
        (wifi, lte)
    }
}

/// The full 33-location corpus. Deterministic: same call, same corpus.
pub fn field_corpus() -> Vec<Location> {
    use Scenario::*;
    let mut out = Vec::with_capacity(33);

    // Table 5's seven named locations (BW in Mbps, RTT in ms), grouped by
    // the paper's horizontal lines: scenarios 1, 2, 3.
    out.push(Location::named(
        "Hotel Hi",
        WifiNeverSufficient,
        2.92,
        14.1,
        11.0,
        51.9,
        0.25,
        false,
        1001,
    ));
    out.push(Location::named(
        "Hotel Ha",
        WifiNeverSufficient,
        2.96,
        40.8,
        14.0,
        68.6,
        0.25,
        false,
        1002,
    ));
    out.push(Location::named(
        "Food Market",
        WifiNeverSufficient,
        3.58,
        75.4,
        22.9,
        53.4,
        0.30,
        false,
        1003,
    ));
    out.push(Location::named(
        "Airport",
        WifiSometimesSufficient,
        5.97,
        32.2,
        12.1,
        67.3,
        0.40,
        true,
        1004,
    ));
    out.push(Location::named(
        "Coffeehouse",
        WifiSometimesSufficient,
        6.04,
        28.9,
        18.1,
        69.0,
        0.40,
        true,
        1005,
    ));
    out.push(Location::named(
        "Library",
        WifiAlwaysSufficient,
        17.8,
        23.3,
        5.18,
        64.1,
        0.12,
        false,
        1006,
    ));
    out.push(Location::named(
        "Elec. Store",
        WifiAlwaysSufficient,
        28.4,
        10.8,
        18.5,
        59.4,
        0.10,
        false,
        1007,
    ));

    // 26 synthesized locations completing the 21 / 5 / 7 scenario split.
    // Bandwidths cycle through each scenario's plausible range; RTTs and
    // LTE rates vary deterministically with the index.
    let s1_kinds = [
        "Fast Food",
        "Shopping Mall",
        "Retailer",
        "Grocery",
        "Parking Lot",
        "Hotel",
        "Cafe",
        "Diner",
        "Pharmacy",
        "Gas Station",
        "Bookstore",
        "Bakery",
        "Gym",
        "Museum",
        "Bus Station",
        "Clinic",
        "Laundromat",
        "Arcade",
    ];
    for (i, kind) in s1_kinds.iter().enumerate() {
        // Scenario 1: WiFi mean 0.8 .. 3.6 Mbps (< the 4 Mbps top rate).
        let wifi = 0.8 + 2.8 * (i as f64 / (s1_kinds.len() - 1) as f64);
        let lte = 8.0 + (i as f64 * 1.7) % 14.0;
        out.push(Location::named(
            &format!("{kind} #{}", i + 1),
            WifiNeverSufficient,
            wifi,
            20.0 + (i as f64 * 7.3) % 60.0,
            lte,
            50.0 + (i as f64 * 5.1) % 25.0,
            0.30,
            i % 3 == 0,
            2000 + i as u64,
        ));
    }
    for i in 0..3 {
        // Scenario 2: WiFi mean 4.5 .. 7 Mbps but unstable with fades.
        let wifi = 4.5 + i as f64 * 1.2;
        out.push(Location::named(
            &format!("Food Court #{}", i + 1),
            WifiSometimesSufficient,
            wifi,
            25.0 + i as f64 * 10.0,
            10.0 + i as f64 * 4.0,
            55.0 + i as f64 * 6.0,
            0.45,
            true,
            3000 + i as u64,
        ));
    }
    for i in 0..5 {
        // Scenario 3: stable 9 .. 30 Mbps WiFi.
        let wifi = 9.0 + i as f64 * 5.0;
        out.push(Location::named(
            &format!("Office Park #{}", i + 1),
            WifiAlwaysSufficient,
            wifi,
            10.0 + i as f64 * 5.0,
            12.0 + i as f64 * 2.5,
            55.0 + i as f64 * 3.0,
            0.10,
            false,
            4000 + i as u64,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdash_sim::SimTime;

    #[test]
    fn corpus_has_33_locations_with_paper_split() {
        let corpus = field_corpus();
        assert_eq!(corpus.len(), 33);
        let count = |s: Scenario| corpus.iter().filter(|l| l.scenario == s).count();
        // 64% / 15% / 21% of 33 ≈ 21 / 5 / 7.
        assert_eq!(count(Scenario::WifiNeverSufficient), 21);
        assert_eq!(count(Scenario::WifiSometimesSufficient), 5);
        assert_eq!(count(Scenario::WifiAlwaysSufficient), 7);
    }

    #[test]
    fn named_locations_pin_table5_numbers() {
        let corpus = field_corpus();
        let lib = corpus.iter().find(|l| l.name == "Library").unwrap();
        assert_eq!(lib.wifi_mbps, 17.8);
        assert_eq!(lib.lte_mbps, 5.18);
        assert_eq!(lib.wifi_rtt, SimDuration::from_secs_f64(0.0233));
        let hotel = corpus.iter().find(|l| l.name == "Hotel Hi").unwrap();
        assert_eq!(hotel.wifi_mbps, 2.92);
        assert_eq!(hotel.scenario, Scenario::WifiNeverSufficient);
    }

    #[test]
    fn scenario_bandwidth_invariants() {
        for loc in field_corpus() {
            match loc.scenario {
                Scenario::WifiNeverSufficient => {
                    assert!(loc.wifi_mbps < 4.0, "{}: {}", loc.name, loc.wifi_mbps)
                }
                Scenario::WifiSometimesSufficient => {
                    assert!(loc.wifi_mbps >= 4.0 && loc.wifi_mbps < 8.0, "{}", loc.name)
                }
                Scenario::WifiAlwaysSufficient => {
                    assert!(loc.wifi_mbps >= 8.0, "{}", loc.name)
                }
            }
            assert!(loc.lte_mbps > 0.0);
        }
    }

    #[test]
    fn profiles_are_deterministic_and_distinct() {
        let a = field_corpus();
        let b = field_corpus();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.wifi_profile().rate_at(SimTime::from_secs(123)),
                y.wifi_profile().rate_at(SimTime::from_secs(123)),
                "{} must be reproducible",
                x.name
            );
        }
        // Two different locations with similar means still differ.
        let p1 = a[7].wifi_profile().rate_at(SimTime::from_secs(55));
        let p2 = a[8].wifi_profile().rate_at(SimTime::from_secs(55));
        assert_ne!(p1, p2);
    }

    #[test]
    fn revisits_change_conditions_not_identity() {
        let corpus = field_corpus();
        let base = &corpus[0];
        let again = base.revisit(1);
        assert_eq!(again.wifi_mbps, base.wifi_mbps);
        assert_eq!(again.scenario, base.scenario);
        assert!(again.name.contains("visit 2"));
        // Different instantaneous conditions...
        let t = SimTime::from_secs(33);
        assert_ne!(
            base.wifi_profile().rate_at(t),
            again.wifi_profile().rate_at(t)
        );
        // ...same long-run mean (within the AR estimator's tolerance).
        let h = SimDuration::from_secs(600);
        let a = base.wifi_profile().mean_rate(h).as_mbps_f64();
        let b = again.wifi_profile().mean_rate(h).as_mbps_f64();
        assert!((a - b).abs() / a < 0.15, "{a} vs {b}");
        // Visit 0 is the original.
        assert_eq!(base.revisit(0).name, base.name);
    }

    #[test]
    fn links_use_half_rtt_per_direction() {
        let corpus = field_corpus();
        let (w, l) = corpus[0].links();
        assert_eq!(w.delay * 2, corpus[0].wifi_rtt);
        assert_eq!(l.delay * 2, corpus[0].lte_rtt);
    }

    #[test]
    fn profile_means_track_declared_bandwidth() {
        let horizon = SimDuration::from_secs(600);
        for loc in field_corpus().iter().take(10) {
            let m = loc.wifi_profile().mean_rate(horizon).as_mbps_f64();
            // Fades pull the mean slightly under the AR mean.
            assert!(
                (m / loc.wifi_mbps - 1.0).abs() < 0.12,
                "{}: profile mean {m} vs declared {}",
                loc.name,
                loc.wifi_mbps
            );
        }
    }
}
