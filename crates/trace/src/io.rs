//! Trace serialization: save and load bandwidth profiles as JSON.
//!
//! The paper's field campaign produced 150+ GB of captures that were
//! replayed through the trace-driven simulator and the energy model. The
//! equivalent workflow here: export any [`BandwidthProfile`] (synthetic
//! or corpus) to a portable JSON document, edit or collect your own, and
//! load it back for experiments — so downstream users can feed *real*
//! measured traces into the same harness.
//!
//! Format: a flat list of `(seconds, mbps)` step points plus an optional
//! looping period — deliberately trivial to produce from `iperf` logs or
//! packet captures.

use mpdash_link::BandwidthProfile;
use mpdash_results::{Json, JsonError};
use mpdash_sim::{Rate, SimDuration, SimTime};

/// A serializable bandwidth profile.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileSpec {
    /// Human-readable label.
    pub name: String,
    /// Step points: the rate is `mbps[i]` from `at_secs[i]` until the
    /// next point. Must be non-empty, starting at 0.0 seconds, strictly
    /// increasing.
    pub points: Vec<ProfilePoint>,
    /// Looping period in seconds; `null` for a one-shot trace that holds
    /// its last rate forever.
    pub period_secs: Option<f64>,
}

/// One step point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProfilePoint {
    /// Step start, seconds from trace start.
    pub at_secs: f64,
    /// Rate from this instant, Mbps.
    pub mbps: f64,
}

/// Errors loading a [`ProfileSpec`].
#[derive(Debug, PartialEq, Eq)]
pub enum ProfileSpecError {
    /// No points.
    Empty,
    /// First point does not start at 0.
    DoesNotStartAtZero,
    /// Points not strictly increasing in time.
    NotIncreasing,
    /// A non-finite or negative number appeared.
    BadNumber,
}

impl std::fmt::Display for ProfileSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileSpecError::Empty => write!(f, "profile has no points"),
            ProfileSpecError::DoesNotStartAtZero => {
                write!(f, "first point must start at t=0")
            }
            ProfileSpecError::NotIncreasing => {
                write!(f, "points must be strictly increasing in time")
            }
            ProfileSpecError::BadNumber => write!(f, "times and rates must be finite and >= 0"),
        }
    }
}

impl std::error::Error for ProfileSpecError {}

impl ProfileSpec {
    /// Validate and convert into a [`BandwidthProfile`].
    pub fn to_profile(&self) -> Result<BandwidthProfile, ProfileSpecError> {
        if self.points.is_empty() {
            return Err(ProfileSpecError::Empty);
        }
        for p in &self.points {
            if !p.at_secs.is_finite() || p.at_secs < 0.0 || !p.mbps.is_finite() || p.mbps < 0.0 {
                return Err(ProfileSpecError::BadNumber);
            }
        }
        if self.points[0].at_secs != 0.0 {
            return Err(ProfileSpecError::DoesNotStartAtZero);
        }
        if self.points.windows(2).any(|w| w[1].at_secs <= w[0].at_secs) {
            return Err(ProfileSpecError::NotIncreasing);
        }
        if let Some(p) = self.period_secs {
            if !p.is_finite() || p <= 0.0 {
                return Err(ProfileSpecError::BadNumber);
            }
        }
        let steps = self
            .points
            .iter()
            .map(|p| {
                (
                    SimTime::from_secs_f64(p.at_secs),
                    Rate::from_mbps_f64(p.mbps),
                )
            })
            .collect();
        Ok(BandwidthProfile::Steps {
            steps,
            period: self.period_secs.map(SimDuration::from_secs_f64),
        })
    }

    /// Sample an arbitrary profile into a spec at fixed `slot` width over
    /// `duration` (the export path; exact for step profiles sampled at
    /// their own granularity).
    pub fn from_profile(
        name: impl Into<String>,
        profile: &BandwidthProfile,
        slot: SimDuration,
        duration: SimDuration,
        looped: bool,
    ) -> Self {
        assert!(!slot.is_zero() && !duration.is_zero());
        let n = (duration.as_nanos() / slot.as_nanos()).max(1);
        let points = (0..n)
            .map(|i| {
                let at = SimTime::ZERO + slot * i;
                ProfilePoint {
                    at_secs: at.as_secs_f64(),
                    mbps: profile.rate_at(at).as_mbps_f64(),
                }
            })
            .collect();
        ProfileSpec {
            name: name.into(),
            points,
            period_secs: looped.then(|| duration.as_secs_f64()),
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            (
                "points",
                Json::arr(self.points.iter().map(|p| {
                    Json::obj([
                        ("at_secs", Json::Float(p.at_secs)),
                        ("mbps", Json::Float(p.mbps)),
                    ])
                })),
            ),
            (
                "period_secs",
                self.period_secs.map(Json::Float).unwrap_or(Json::Null),
            ),
        ])
        .to_pretty()
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        let v = Json::parse(s)?;
        let name = v
            .req("name")?
            .as_str()
            .ok_or_else(|| JsonError::schema("'name' must be a string"))?
            .to_string();
        let points = v
            .req("points")?
            .as_arr()
            .ok_or_else(|| JsonError::schema("'points' must be an array"))?
            .iter()
            .map(|p| {
                let num = |key: &str| -> Result<f64, JsonError> {
                    p.req(key)?
                        .as_f64()
                        .ok_or_else(|| JsonError::schema(format!("'{key}' must be a number")))
                };
                Ok(ProfilePoint {
                    at_secs: num("at_secs")?,
                    mbps: num("mbps")?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let period_secs = match v.get("period_secs") {
            None => None,
            Some(p) if p.is_null() => None,
            Some(p) => Some(
                p.as_f64()
                    .ok_or_else(|| JsonError::schema("'period_secs' must be a number"))?,
            ),
        };
        Ok(ProfileSpec {
            name,
            points,
            period_secs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthSpec;

    #[test]
    fn json_round_trip() {
        let spec = ProfileSpec {
            name: "office-wifi".into(),
            points: vec![
                ProfilePoint {
                    at_secs: 0.0,
                    mbps: 28.4,
                },
                ProfilePoint {
                    at_secs: 1.5,
                    mbps: 22.0,
                },
                ProfilePoint {
                    at_secs: 3.0,
                    mbps: 30.1,
                },
            ],
            period_secs: Some(4.5),
        };
        let json = spec.to_json();
        let back = ProfileSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn spec_to_profile_and_back_preserves_rates() {
        let synth = SynthSpec::new(3.8, 0.2, 5)
            .with_duration(SimDuration::from_secs(10))
            .profile();
        let spec = ProfileSpec::from_profile(
            "synth",
            &synth,
            SimDuration::from_millis(50),
            SimDuration::from_secs(10),
            true,
        );
        let rebuilt = spec.to_profile().unwrap();
        for i in 0..400u64 {
            let t = SimTime::from_millis(i * 50 + 1);
            let a = synth.rate_at(t).as_mbps_f64();
            let b = rebuilt.rate_at(t).as_mbps_f64();
            assert!((a - b).abs() < 1e-6, "t={t}: {a} vs {b}");
        }
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let empty = ProfileSpec {
            name: "x".into(),
            points: vec![],
            period_secs: None,
        };
        assert_eq!(empty.to_profile().unwrap_err(), ProfileSpecError::Empty);

        let late_start = ProfileSpec {
            name: "x".into(),
            points: vec![ProfilePoint {
                at_secs: 1.0,
                mbps: 1.0,
            }],
            period_secs: None,
        };
        assert_eq!(
            late_start.to_profile().unwrap_err(),
            ProfileSpecError::DoesNotStartAtZero
        );

        let unordered = ProfileSpec {
            name: "x".into(),
            points: vec![
                ProfilePoint {
                    at_secs: 0.0,
                    mbps: 1.0,
                },
                ProfilePoint {
                    at_secs: 2.0,
                    mbps: 1.0,
                },
                ProfilePoint {
                    at_secs: 1.0,
                    mbps: 1.0,
                },
            ],
            period_secs: None,
        };
        assert_eq!(
            unordered.to_profile().unwrap_err(),
            ProfileSpecError::NotIncreasing
        );

        let nan = ProfileSpec {
            name: "x".into(),
            points: vec![ProfilePoint {
                at_secs: 0.0,
                mbps: f64::NAN,
            }],
            period_secs: None,
        };
        assert_eq!(nan.to_profile().unwrap_err(), ProfileSpecError::BadNumber);

        let bad_period = ProfileSpec {
            name: "x".into(),
            points: vec![ProfilePoint {
                at_secs: 0.0,
                mbps: 1.0,
            }],
            period_secs: Some(-1.0),
        };
        assert_eq!(
            bad_period.to_profile().unwrap_err(),
            ProfileSpecError::BadNumber
        );
    }

    #[test]
    fn loaded_profile_loops() {
        let spec = ProfileSpec {
            name: "loop".into(),
            points: vec![
                ProfilePoint {
                    at_secs: 0.0,
                    mbps: 1.0,
                },
                ProfilePoint {
                    at_secs: 1.0,
                    mbps: 2.0,
                },
            ],
            period_secs: Some(2.0),
        };
        let p = spec.to_profile().unwrap();
        assert_eq!(p.rate_at(SimTime::from_millis(500)).as_mbps_f64(), 1.0);
        assert_eq!(p.rate_at(SimTime::from_millis(2_500)).as_mbps_f64(), 1.0);
        assert_eq!(p.rate_at(SimTime::from_millis(3_500)).as_mbps_f64(), 2.0);
    }
}
