//! The bandwidth-profile corpus behind every experiment.
//!
//! The paper's evaluation rests on three kinds of network conditions, all
//! reproduced here as deterministic, seeded profiles:
//!
//! * [`synth`] — parameterized synthetic traces: AR(1)-correlated
//!   multiplicative noise around a mean (the σ=10%/30% profiles of
//!   Table 1) with optional deep-fade events.
//! * [`table1`] — the five Table 1 profiles used by the trace-driven
//!   scheduler simulation (Table 2) and the Figure 5 prediction plots.
//! * [`field`] — the 33-location field corpus (§2.2, §7.3.3): the seven
//!   named locations of Table 5 pinned to their measured bandwidths and
//!   RTTs, plus 26 synthesized locations filling the paper's 64% / 15% /
//!   21% scenario split.
//! * [`mobility`] — the §7.3.4 walk-around-the-AP profile: WiFi swings
//!   between full strength and near-blackout as the walker loops, LTE
//!   stays steady.
//! * [`io`] — JSON import/export of profiles, so real measured traces
//!   (iperf logs, captures) can be fed into the same harness.
//!
//! Everything is a pure function of its seed — re-running an experiment
//! re-creates the identical corpus (the substitution for the paper's
//! 150 GB of captured traces is documented in `DESIGN.md`).

pub mod field;
pub mod io;
pub mod mobility;
pub mod synth;
pub mod table1;

pub use field::{field_corpus, Location, Scenario};
pub use io::{ProfilePoint, ProfileSpec};
pub use synth::SynthSpec;
