//! The §7.3.4 mobility scenario: walking a fixed loop around a WiFi AP.
//!
//! The paper's Figure 11 shows WiFi throughput swinging between ~5 Mbps
//! (near the AP) and a deep fade (far side of the loop) roughly once a
//! minute, while the LTE link holds steady at ~5 Mbps. The profile here
//! is that shape: a raised-cosine path-loss sweep with mild
//! multiplicative noise, looping forever.

use crate::synth::SynthSpec;
use mpdash_link::{BandwidthProfile, LinkConfig};
#[cfg(test)]
use mpdash_sim::SimTime;
use mpdash_sim::{Rate, SimDuration};

/// Walk parameters.
#[derive(Clone, Copy, Debug)]
pub struct MobilityWalk {
    /// Peak WiFi bandwidth next to the AP, Mbps.
    pub peak_mbps: f64,
    /// Minimum WiFi bandwidth at the far point, Mbps.
    pub trough_mbps: f64,
    /// Time for one full loop around the AP.
    pub lap: SimDuration,
    /// Steady LTE bandwidth, Mbps.
    pub lte_mbps: f64,
    /// Noise seed.
    pub seed: u64,
}

impl Default for MobilityWalk {
    fn default() -> Self {
        MobilityWalk {
            peak_mbps: 5.5,
            trough_mbps: 1.2,
            lap: SimDuration::from_secs(60),
            lte_mbps: 5.0,
            seed: 77,
        }
    }
}

impl MobilityWalk {
    /// The WiFi profile: raised cosine over the lap with ±10% noise,
    /// sampled at 250 ms.
    pub fn wifi_profile(&self) -> BandwidthProfile {
        let slot = SimDuration::from_millis(250);
        let n = (self.lap.as_nanos() / slot.as_nanos()).max(2) as usize;
        // Noise comes from a synthetic helper trace around 1.0.
        let noise = SynthSpec::new(1.0, 0.10, self.seed)
            .with_duration(self.lap)
            .samples();
        let samples: Vec<Rate> = (0..n)
            .map(|i| {
                let phase = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                let sweep = 0.5 * (1.0 + phase.cos()); // 1 at AP, 0 far side
                let base = self.trough_mbps + (self.peak_mbps - self.trough_mbps) * sweep;
                let k = noise
                    .get(i % noise.len())
                    .map(|r| r.as_mbps_f64())
                    .unwrap_or(1.0);
                Rate::from_mbps_f64(base * k)
            })
            .collect();
        BandwidthProfile::from_samples(slot, &samples, true)
    }

    /// The LTE profile: steady with mild commercial-network noise.
    pub fn lte_profile(&self) -> BandwidthProfile {
        SynthSpec::new(self.lte_mbps, 0.10, self.seed ^ 0xABCD).profile()
    }

    /// Link configurations (typical 30 ms WiFi RTT while moving, 60 ms
    /// LTE RTT).
    pub fn links(&self) -> (LinkConfig, LinkConfig) {
        (
            LinkConfig::constant(1.0, SimDuration::from_millis(15))
                .with_profile(self.wifi_profile()),
            LinkConfig::constant(1.0, SimDuration::from_millis(30))
                .with_profile(self.lte_profile()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wifi_swings_between_peak_and_trough() {
        let w = MobilityWalk::default();
        let p = w.wifi_profile();
        let vals: Vec<f64> = (0..240)
            .map(|i| p.rate_at(SimTime::from_millis(i * 250)).as_mbps_f64())
            .collect();
        let max = vals.iter().cloned().fold(0.0, f64::max);
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 4.5, "peak {max}");
        assert!(min < 1.6, "trough {min}");
    }

    #[test]
    fn profile_loops_with_the_lap_period() {
        let w = MobilityWalk::default();
        let p = w.wifi_profile();
        let a = p.rate_at(SimTime::from_millis(7_250));
        let b = p.rate_at(SimTime::from_millis(7_250 + 60_000));
        assert_eq!(a, b);
    }

    #[test]
    fn lte_stays_steady() {
        let w = MobilityWalk::default();
        let p = w.lte_profile();
        let vals: Vec<f64> = (0..1000)
            .map(|i| p.rate_at(SimTime::from_millis(i * 100)).as_mbps_f64())
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean / 5.0 - 1.0).abs() < 0.08, "lte mean {mean}");
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min > 2.5, "lte never collapses: {min}");
    }
}
