//! Synthetic bandwidth profiles: seeded AR(1) noise around a mean, with
//! optional deep fades.
//!
//! The paper's synthetic profiles (Table 1) fix the mean and the standard
//! deviation of instantaneous throughput (σ = 10% or 30% of the mean). A
//! white-noise series with that σ would be unrealistically jittery at
//! 50 ms slots; real last-mile traces are *correlated* (Figure 5's traces
//! wander on second scales). We therefore use an AR(1) process
//!
//! ```text
//! x_{t+1} = mean + ρ·(x_t − mean) + ε_t,   ε ~ N(0, σ²·(1−ρ²))
//! ```
//!
//! whose stationary standard deviation is exactly σ, with ρ = 0.9 at the
//! default 50 ms slot (decorrelation time ≈ 0.5 s).

use mpdash_link::BandwidthProfile;
use mpdash_sim::{Prng, Rate, SimDuration};

/// Specification of one synthetic trace.
#[derive(Clone, Debug)]
pub struct SynthSpec {
    /// Long-run mean, Mbps.
    pub mean_mbps: f64,
    /// Stationary standard deviation as a fraction of the mean.
    pub sigma_frac: f64,
    /// Slot width (the paper uses the path RTT; 50 ms default).
    pub slot: SimDuration,
    /// Trace length; loops afterwards.
    pub duration: SimDuration,
    /// AR(1) coefficient in `[0, 1)`.
    pub rho: f64,
    /// Hard floor, Mbps (bandwidth cannot go negative; public WiFi rarely
    /// hits true zero without a fade event).
    pub floor_mbps: f64,
    /// Optional deep fades: `(probability per slot, depth factor,
    /// duration)` — e.g. `(0.002, 0.05, 2 s)` yields a couple of
    /// near-blackouts per 10-minute trace.
    pub fade: Option<(f64, f64, SimDuration)>,
    /// RNG seed.
    pub seed: u64,
}

impl SynthSpec {
    /// A stationary profile with the given mean and σ-fraction, 10 minutes
    /// long at 50 ms slots, no fades.
    pub fn new(mean_mbps: f64, sigma_frac: f64, seed: u64) -> Self {
        SynthSpec {
            mean_mbps,
            sigma_frac,
            slot: SimDuration::from_millis(50),
            duration: SimDuration::from_secs(660),
            rho: 0.9,
            floor_mbps: mean_mbps * 0.05,
            fade: None,
            seed,
        }
    }

    /// Same spec with fade events enabled.
    pub fn with_fades(mut self, prob_per_slot: f64, depth: f64, len: SimDuration) -> Self {
        self.fade = Some((prob_per_slot, depth, len));
        self
    }

    /// Same spec with a different duration.
    pub fn with_duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Number of slots in the trace.
    pub fn n_slots(&self) -> usize {
        (self.duration.as_nanos() / self.slot.as_nanos()).max(1) as usize
    }

    /// Generate the raw per-slot rates.
    pub fn samples(&self) -> Vec<Rate> {
        let mut rng = Prng::new(self.seed);
        let n = self.n_slots();
        let sigma = self.mean_mbps * self.sigma_frac;
        let innov_sigma = sigma * (1.0 - self.rho * self.rho).sqrt();
        let mut x = self.mean_mbps;
        let mut out = Vec::with_capacity(n);
        let mut fade_left = 0usize;
        let mut fade_depth = 1.0;
        for _ in 0..n {
            // Box-Muller from two uniforms; deterministic per seed.
            let u1: f64 = rng.next_f64().max(1e-12);
            let u2: f64 = rng.next_f64();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            x = self.mean_mbps + self.rho * (x - self.mean_mbps) + innov_sigma * z;
            let mut v = x.max(self.floor_mbps);
            if let Some((p, depth, len)) = self.fade {
                if fade_left > 0 {
                    fade_left -= 1;
                } else if rng.next_f64() < p {
                    fade_left = (len.as_nanos() / self.slot.as_nanos()).max(1) as usize;
                    fade_depth = depth;
                }
                if fade_left > 0 {
                    v *= fade_depth;
                }
            }
            out.push(Rate::from_mbps_f64(v));
        }
        out
    }

    /// Generate the looping [`BandwidthProfile`].
    pub fn profile(&self) -> BandwidthProfile {
        BandwidthProfile::from_samples(self.slot, &self.samples(), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdash_sim::SimTime;

    fn stats(samples: &[Rate]) -> (f64, f64) {
        let vals: Vec<f64> = samples.iter().map(|r| r.as_mbps_f64()).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        (mean, var.sqrt())
    }

    #[test]
    fn mean_and_sigma_are_respected() {
        for &(mean, frac) in &[(3.8, 0.10), (3.8, 0.30), (8.1, 0.20)] {
            let spec = SynthSpec::new(mean, frac, 42);
            let (m, s) = stats(&spec.samples());
            assert!((m / mean - 1.0).abs() < 0.05, "mean {m} target {mean}");
            let target_sigma = mean * frac;
            assert!(
                (s / target_sigma - 1.0).abs() < 0.25,
                "sigma {s} target {target_sigma}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SynthSpec::new(3.8, 0.3, 7).samples();
        let b = SynthSpec::new(3.8, 0.3, 7).samples();
        let c = SynthSpec::new(3.8, 0.3, 8).samples();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn samples_are_temporally_correlated() {
        // Lag-1 autocorrelation should be near ρ, far above white noise.
        let spec = SynthSpec::new(5.0, 0.3, 11);
        let vals: Vec<f64> = spec.samples().iter().map(|r| r.as_mbps_f64()).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let num: f64 = vals.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
        let den: f64 = vals.iter().map(|v| (v - mean).powi(2)).sum();
        let rho = num / den;
        assert!(rho > 0.7, "lag-1 autocorrelation {rho}");
    }

    #[test]
    fn floor_is_enforced() {
        let spec = SynthSpec::new(1.0, 0.9, 3); // wild σ to force clipping
        assert!(spec
            .samples()
            .iter()
            .all(|r| r.as_mbps_f64() >= 0.05 - 1e-9));
    }

    #[test]
    fn fades_produce_deep_dips() {
        let spec = SynthSpec::new(5.0, 0.1, 21).with_fades(0.01, 0.05, SimDuration::from_secs(2));
        let samples = spec.samples();
        let min = samples
            .iter()
            .map(|r| r.as_mbps_f64())
            .fold(f64::INFINITY, f64::min);
        assert!(min < 0.5, "expected a deep fade, min {min}");
        // Without fades the same seed never dips that low.
        let clean = SynthSpec::new(5.0, 0.1, 21).samples();
        let clean_min = clean
            .iter()
            .map(|r| r.as_mbps_f64())
            .fold(f64::INFINITY, f64::min);
        assert!(clean_min > 2.0, "clean min {clean_min}");
    }

    #[test]
    fn profile_loops() {
        let spec = SynthSpec::new(3.0, 0.1, 5).with_duration(SimDuration::from_secs(10));
        let p = spec.profile();
        let a = p.rate_at(SimTime::from_millis(1_234));
        let b = p.rate_at(SimTime::from_millis(11_234));
        assert_eq!(a, b, "profile repeats with its period");
    }
}
