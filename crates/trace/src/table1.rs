//! The five bandwidth profiles of Table 1, used by the trace-driven
//! scheduler simulation (Table 2) and the Figure 5 prediction plots.
//!
//! | trace | WiFi mean | cell mean | character |
//! |---|---|---|---|
//! | Synthetic σ=10% | 3.8 | 3.0 | mild stationary noise |
//! | Synthetic σ=30% | 3.8 | 3.0 | strong stationary noise |
//! | Fast Food B | 5.2 | 8.1 | heavily fluctuating public WiFi |
//! | Coffeehouse D | 1.4 | 7.6 | weak, variable public WiFi |
//! | Office | 28.4 | 19.1 | stable enterprise WiFi |
//!
//! The three "real" traces were captured by the authors and are not
//! published; we stand in synthetic processes whose mean matches Table 1
//! and whose variability matches the paper's qualitative description
//! (Figure 5 shows Fast Food swinging across 2–8 Mbps on second scales
//! while Coffeehouse crawls under 2 Mbps) — see DESIGN.md for the
//! substitution note.

use crate::synth::SynthSpec;
use mpdash_link::{BandwidthProfile, LinkConfig};
use mpdash_sim::SimDuration;

/// One Table 1 row: a WiFi/cellular profile pair plus the file size used
/// by the Table 2 simulation.
#[derive(Clone, Debug)]
pub struct ProfilePair {
    /// Row name as printed in the paper.
    pub name: &'static str,
    /// WiFi bandwidth profile.
    pub wifi: BandwidthProfile,
    /// Cellular bandwidth profile.
    pub cell: BandwidthProfile,
    /// Transfer size for the Table 2 simulation, bytes.
    pub file_size: u64,
    /// Deadlines (seconds) evaluated in Table 2 for this row.
    pub deadlines_s: &'static [u64],
}

const MB: u64 = 1_000_000;

/// The synthetic WiFi 3.8 / LTE 3.0 pair with the given σ fraction —
/// also the controlled-experiment network of §2.3/§7.2.1.
pub fn synthetic_profile_pair(
    wifi_mbps: f64,
    cell_mbps: f64,
    sigma: f64,
    seed: u64,
) -> (BandwidthProfile, BandwidthProfile) {
    (
        SynthSpec::new(wifi_mbps, sigma, seed).profile(),
        SynthSpec::new(cell_mbps, sigma, seed ^ 0x9E37_79B9).profile(),
    )
}

/// All five Table 1 rows, with the paper's file sizes and deadline sets.
pub fn table1_rows() -> Vec<ProfilePair> {
    vec![
        ProfilePair {
            name: "Synthetic (sigma=10%)",
            wifi: SynthSpec::new(3.8, 0.10, 101).profile(),
            cell: SynthSpec::new(3.0, 0.10, 102).profile(),
            file_size: 5 * MB,
            deadlines_s: &[8, 9, 10],
        },
        ProfilePair {
            name: "Synthetic (sigma=30%)",
            wifi: SynthSpec::new(3.8, 0.30, 103).profile(),
            cell: SynthSpec::new(3.0, 0.30, 104).profile(),
            file_size: 5 * MB,
            deadlines_s: &[8, 9, 10],
        },
        ProfilePair {
            name: "Fast Food B",
            // Strongly fluctuating: σ=45% with slow wander plus brief
            // fades — the Figure 5 "FastFood" character.
            wifi: SynthSpec::new(5.2, 0.45, 105)
                .with_fades(0.001, 0.15, SimDuration::from_secs(2))
                .profile(),
            cell: SynthSpec::new(8.1, 0.15, 106).profile(),
            file_size: 20 * MB,
            deadlines_s: &[15, 20, 25, 30],
        },
        ProfilePair {
            name: "Coffeehouse D",
            wifi: SynthSpec::new(1.4, 0.40, 107)
                .with_fades(0.001, 0.2, SimDuration::from_secs(2))
                .profile(),
            cell: SynthSpec::new(7.6, 0.15, 108).profile(),
            file_size: 5 * MB,
            deadlines_s: &[5, 10, 15, 20],
        },
        ProfilePair {
            name: "Office",
            wifi: SynthSpec::new(28.4, 0.08, 109).profile(),
            cell: SynthSpec::new(19.1, 0.10, 110).profile(),
            file_size: 50 * MB,
            deadlines_s: &[9, 12, 15, 18],
        },
    ]
}

/// Controlled-experiment link pair: the §7.1 testbed (50 ms WiFi RTT,
/// ~55 ms LTE RTT) with the given bandwidth profiles.
pub fn testbed_links(wifi: BandwidthProfile, cell: BandwidthProfile) -> (LinkConfig, LinkConfig) {
    (
        LinkConfig::constant(1.0, SimDuration::from_millis(25)).with_profile(wifi),
        LinkConfig::constant(1.0, SimDuration::from_micros(27_500)).with_profile(cell),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdash_sim::SimTime;

    #[test]
    fn five_rows_with_paper_means() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 5);
        let expect = [
            (3.8, 3.0, 5 * MB),
            (3.8, 3.0, 5 * MB),
            (5.2, 8.1, 20 * MB),
            (1.4, 7.6, 5 * MB),
            (28.4, 19.1, 50 * MB),
        ];
        let horizon = SimDuration::from_secs(600);
        for (row, &(w, c, size)) in rows.iter().zip(&expect) {
            let wm = row.wifi.mean_rate(horizon).as_mbps_f64();
            let cm = row.cell.mean_rate(horizon).as_mbps_f64();
            assert!(
                (wm / w - 1.0).abs() < 0.06,
                "{}: wifi {wm} vs {w}",
                row.name
            );
            assert!(
                (cm / c - 1.0).abs() < 0.06,
                "{}: cell {cm} vs {c}",
                row.name
            );
            assert_eq!(row.file_size, size);
            assert!(!row.deadlines_s.is_empty());
        }
    }

    #[test]
    fn fastfood_is_much_more_variable_than_office() {
        let rows = table1_rows();
        let sample_sigma = |p: &BandwidthProfile| {
            let vals: Vec<f64> = (0..6000)
                .map(|i| p.rate_at(SimTime::from_millis(i * 100)).as_mbps_f64())
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
            var.sqrt() / mean
        };
        let fastfood = sample_sigma(&rows[2].wifi);
        let office = sample_sigma(&rows[4].wifi);
        assert!(
            fastfood > 3.0 * office,
            "fastfood cv {fastfood:.3} vs office cv {office:.3}"
        );
    }

    #[test]
    fn testbed_links_have_paper_rtts() {
        let (w, c) = testbed_links(
            BandwidthProfile::constant_mbps(3.8),
            BandwidthProfile::constant_mbps(3.0),
        );
        assert_eq!(w.delay * 2, SimDuration::from_millis(50));
        assert_eq!(c.delay * 2, SimDuration::from_millis(55));
    }

    #[test]
    fn synthetic_pair_seeds_differ_across_paths() {
        let (w, c) = synthetic_profile_pair(3.8, 3.0, 0.1, 9);
        // Same seed base must not produce correlated identical noise.
        let wt = w.rate_at(SimTime::from_millis(12_345));
        let ct = c.rate_at(SimTime::from_millis(12_345));
        assert_ne!(wt, ct);
    }
}
