//! Drive the §6 multipath video analysis tool over a live session:
//! stream with MP-DASH, then correlate the packet trace with the chunk
//! log and render the Figure 8-style visualization.
//!
//! ```sh
//! cargo run --release --example analyze_session
//! ```

use mpdash::analysis::{
    analyze, buffer_trajectory, chunk_path_splits, render_chunk_bars, replay_energy,
    stall_intervals, throughput_timeline, to_json, ChunkInfo,
};
use mpdash::dash::abr::AbrKind;
use mpdash::energy::DeviceProfile;
use mpdash::session::{SessionConfig, StreamingSession, TransportMode};
use mpdash::sim::SimDuration;
use mpdash::trace::table1;

fn main() {
    let cfg = SessionConfig::controlled(
        table1::synthetic_profile_pair(3.8, 3.0, 0.10, 42),
        AbrKind::Festive,
        TransportMode::mpdash_rate_based(),
    );
    let report = StreamingSession::run(cfg);

    let chunks: Vec<ChunkInfo> = report
        .chunks
        .iter()
        .map(|c| ChunkInfo {
            index: c.index,
            level: c.level,
            size: c.size,
            started: c.started,
            completed: c.completed,
            body_dss: (c.body_dss.start, c.body_dss.end),
        })
        .collect();
    let splits = chunk_path_splits(&report.records, &chunks);
    let a = analyze(&report.records, &chunks, 5);

    println!("chunk bars (first 20 chunks):\n");
    println!("{}", render_chunk_bars(&chunks[..20], &splits[..20], 30));

    println!("throughput, first 60 s:");
    println!(
        "{}",
        throughput_timeline(
            &report.records,
            SimDuration::from_secs(1),
            SimDuration::from_secs(60)
        )
    );

    println!("session summary:");
    println!("  chunks           : {}", chunks.len());
    println!("  quality switches : {}", a.switches);
    println!("  level histogram  : {:?}", a.level_histogram);
    println!(
        "  mean download    : {:.2} s",
        a.mean_download.as_secs_f64()
    );
    println!(
        "  cellular share   : {:.1}% of body bytes",
        a.cell_body_bytes as f64 / (a.cell_body_bytes + a.wifi_body_bytes).max(1) as f64 * 100.0
    );
    println!("  idle gaps >0.5 s : {}", a.idle_gaps.len());
    let stats = report.scheduler_stats;
    println!(
        "  scheduler        : {} toggles, {} missed deadlines, {} scheduled chunks",
        stats.toggles, stats.missed_deadlines, stats.completed_transfers
    );

    // Rebuffering report from the player event log (§6's second input).
    let stalls = stall_intervals(&report.player_events);
    println!("  rebuffer events  : {}", stalls.len());
    for (at, dur) in &stalls {
        println!("    stall at {at} for {dur}");
    }
    let traj = buffer_trajectory(&report.player_events);
    let peak = traj.iter().map(|&(_, b)| b).fold(0.0f64, f64::max);
    println!("  peak buffer      : {peak:.1} s of {:.0} s capacity", 40.0);

    // Energy replay through both device models (§7.1's cross-check).
    for device in [DeviceProfile::galaxy_note(), DeviceProfile::galaxy_s3()] {
        let e = replay_energy(&report.records, &device, report.duration);
        println!(
            "  energy ({:<20}): {:6.1} J  (wifi {:5.1}, lte {:5.1})",
            device.name,
            e.total_j(),
            e.wifi.total_j(),
            e.lte.total_j()
        );
    }

    // Machine-readable export for plotting pipelines.
    let json = to_json(&chunks, &a);
    let path = std::env::temp_dir().join("mpdash-session.json");
    std::fs::write(&path, &json).expect("write export");
    println!(
        "  JSON export      : {} ({} bytes)",
        path.display(),
        json.len()
    );
}
