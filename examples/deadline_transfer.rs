//! The MP-DASH scheduler as a general building block (§8 of the paper):
//! any delay-tolerant transfer with a deadline — the next song in a music
//! app, a map tile ahead of the car — can ride WiFi first and spill to
//! cellular only when the deadline is at risk.
//!
//! This example downloads a "next song" (4 MB, needed in 30 s — roughly
//! when the current track ends) over a mediocre coffee-shop WiFi plus
//! LTE, with and without the scheduler.
//!
//! ```sh
//! cargo run --release --example deadline_transfer
//! ```

use mpdash::session::{FileTransfer, FileTransferConfig, TransportMode};
use mpdash::sim::SimDuration;

fn main() {
    let song_bytes = 4_000_000;
    let deadline = SimDuration::from_secs(30);

    let run = |mode: TransportMode| {
        FileTransfer::run(
            FileTransferConfig::testbed(1.6, 8.0, mode)
                .with_size(song_bytes)
                .with_deadline(deadline),
        )
    };

    let base = run(TransportMode::Vanilla);
    let mp = run(TransportMode::mpdash_rate_based());

    println!("prefetching the next song: 4 MB, needed within 30 s");
    println!("network: coffee-shop WiFi 1.6 Mbps + LTE 8.0 Mbps\n");
    for (name, r) in [("vanilla MPTCP", &base), ("MP-DASH", &mp)] {
        println!(
            "{name:>14}: finished in {:>5.1} s | LTE {:>4.2} MB | energy {:>5.1} J{}",
            r.duration.as_secs_f64(),
            r.cell_bytes as f64 / 1e6,
            r.energy.total_j(),
            if r.missed_deadline { " | MISSED" } else { "" },
        );
    }
    assert!(!mp.missed_deadline, "the song must be ready in time");
    println!(
        "\nMP-DASH used {:.0}% less cellular data; the song is still ready \
         before the current one ends.",
        (1.0 - mp.cell_bytes as f64 / base.cell_bytes as f64) * 100.0
    );
}
