//! Field study in miniature: stream at a handful of the 33-location
//! corpus's sites and watch how MP-DASH's savings track WiFi quality —
//! small at bandwidth-starved hotels, near-total at well-provisioned
//! offices (the paper's §7.3.3 narrative).
//!
//! ```sh
//! cargo run --release --example field_study
//! ```

use mpdash::dash::abr::AbrKind;
use mpdash::session::{SessionConfig, StreamingSession, TransportMode};
use mpdash::trace::field::field_corpus;

fn main() {
    let corpus = field_corpus();
    let picks = [
        "Hotel Hi",
        "Food Market",
        "Airport",
        "Coffeehouse",
        "Library",
    ];

    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>9}",
        "location", "WiFi Mbps", "LTE Mbps", "cell saving", "energy save", "bitrate"
    );
    for name in picks {
        let loc = corpus
            .iter()
            .find(|l| l.name == name)
            .expect("named location in corpus");
        let base = StreamingSession::run(SessionConfig::at_location(
            loc,
            AbrKind::Festive,
            TransportMode::Vanilla,
        ));
        let mp = StreamingSession::run(SessionConfig::at_location(
            loc,
            AbrKind::Festive,
            TransportMode::mpdash_rate_based(),
        ));
        assert_eq!(mp.qoe.stalls, 0, "{name}: MP-DASH must not stall");
        println!(
            "{:<14} {:>10.2} {:>10.2} {:>11.1}% {:>11.1}% {:>8.2}",
            loc.name,
            loc.wifi_mbps,
            loc.lte_mbps,
            mp.cell_saving_vs(&base) * 100.0,
            mp.energy_saving_vs(&base) * 100.0,
            mp.qoe.mean_bitrate_mbps,
        );
    }
    println!("\nPattern: the better the WiFi, the more MP-DASH saves (§7.3.3).");
}
