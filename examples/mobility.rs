//! The §7.3.4 mobility scenario as a runnable demo: walk a loop around
//! the WiFi AP while streaming, and watch MP-DASH lean on cellular only
//! while WiFi fades.
//!
//! ```sh
//! cargo run --release --example mobility
//! ```

use mpdash::analysis::throughput_timeline;
use mpdash::core::predict::PredictorKind;
use mpdash::dash::abr::AbrKind;
use mpdash::dash::video::Video;
use mpdash::energy::DeviceProfile;
use mpdash::mptcp::{CcKind, SchedulerSpec};
use mpdash::session::{SessionConfig, StreamingSession, TransportMode};
use mpdash::sim::{Rate, SimDuration};
use mpdash::trace::mobility::MobilityWalk;

fn config(mode: TransportMode) -> SessionConfig {
    let walk = MobilityWalk::default();
    let (wifi, cell) = walk.links();
    SessionConfig {
        video: Video::big_buck_bunny(),
        wifi,
        cell,
        abr: AbrKind::Festive,
        mode,
        buffer_capacity: SimDuration::from_secs(40),
        scheduler: SchedulerSpec::MinRtt,
        cc: CcKind::Reno,
        device: DeviceProfile::galaxy_note(),
        priors: (Rate::from_mbps_f64(3.0), Rate::from_mbps_f64(5.0)),
        predictor: PredictorKind::control_default(),
        enable_debounce: 4,
        sample_slot: SimDuration::from_millis(250),
        adapter_config: None,
        preference: Default::default(),
        tracer: Default::default(),
        server_faults: Default::default(),
        lifecycle: Default::default(),
        origins: None,
        cache: None,
        telemetry: None,
        start_offset: SimDuration::ZERO,
        max_watch: None,
    }
}

fn main() {
    println!("walking a loop around the AP while streaming (FESTIVE)...\n");
    let base = StreamingSession::run(config(TransportMode::Vanilla));
    let mp = StreamingSession::run(config(TransportMode::mpdash_rate_based()));

    for (name, r) in [("vanilla MPTCP", &base), ("MP-DASH", &mp)] {
        println!(
            "{name:>14}: bitrate {:.2} Mbps | stalls {} | LTE {:>6.1} MB | energy {:>5.0} J",
            r.qoe.mean_bitrate_mbps,
            r.qoe.stalls,
            r.cell_bytes as f64 / 1e6,
            r.energy.total_j(),
        );
    }
    println!(
        "\nsavings: {:.0}% cellular, {:.0}% energy — at full playback quality.\n",
        mp.cell_saving_vs(&base) * 100.0,
        mp.energy_saving_vs(&base) * 100.0
    );
    println!("MP-DASH traffic over two laps (cellular bursts track the WiFi fades):");
    println!(
        "{}",
        throughput_timeline(
            &mp.records,
            SimDuration::from_secs(2),
            SimDuration::from_secs(120)
        )
    );
}
