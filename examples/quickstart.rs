//! Quickstart: stream one DASH video over simulated WiFi + LTE, first
//! with vanilla MPTCP, then with MP-DASH, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mpdash::dash::abr::AbrKind;
use mpdash::session::{SessionConfig, StreamingSession, TransportMode};
use mpdash::trace::table1;

fn main() {
    // The paper's motivating network: WiFi 3.8 Mbps, LTE 3.0 Mbps —
    // WiFi alone is just short of the 3.94 Mbps top bitrate.
    let network = || table1::synthetic_profile_pair(3.8, 3.0, 0.10, 42);

    println!("streaming Big Buck Bunny (10 min, 4 s chunks, FESTIVE)...\n");

    let baseline = StreamingSession::run(SessionConfig::controlled(
        network(),
        AbrKind::Festive,
        TransportMode::Vanilla,
    ));
    let mpdash = StreamingSession::run(SessionConfig::controlled(
        network(),
        AbrKind::Festive,
        TransportMode::mpdash_rate_based(),
    ));

    for (name, r) in [("vanilla MPTCP", &baseline), ("MP-DASH (rate)", &mpdash)] {
        println!("{name}:");
        println!("  mean bitrate : {:.2} Mbps", r.qoe.mean_bitrate_mbps);
        println!("  stalls       : {}", r.qoe.stalls);
        println!("  WiFi bytes   : {:6.1} MB", r.wifi_bytes as f64 / 1e6);
        println!("  LTE bytes    : {:6.1} MB", r.cell_bytes as f64 / 1e6);
        println!("  radio energy : {:6.1} J", r.energy.total_j());
        println!();
    }
    println!(
        "MP-DASH saved {:.0}% of cellular data and {:.0}% of radio energy,",
        mpdash.cell_saving_vs(&baseline) * 100.0,
        mpdash.energy_saving_vs(&baseline) * 100.0,
    );
    println!(
        "with a playback-bitrate change of {:+.1}% and {} stalls.",
        -mpdash.qoe.bitrate_reduction_vs(&baseline.qoe) * 100.0,
        mpdash.qoe.stalls
    );
}
