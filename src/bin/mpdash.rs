//! The `mpdash` CLI: run a JSON scenario and print the full comparison.
//!
//! ```sh
//! cargo run --release --bin mpdash -- scenarios/example.json
//! cargo run --release --bin mpdash -- --chunks scenarios/example.json   # + Figure 8 bars
//! ```

use mpdash::analysis::{chunk_path_splits, render_chunk_bars, ChunkInfo};
use mpdash::scenario::Scenario;
use mpdash::session::run_batch;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let show_chunks = args.iter().any(|a| a == "--chunks");
    let mut failed = false;
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if paths.is_empty() {
        eprintln!("usage: mpdash [--chunks] <scenario.json>...");
        eprintln!("see scenarios/example.json for the document format");
        return ExitCode::from(2);
    }

    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let scenario = match Scenario::from_json(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: parsing {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let jobs = match scenario.jobs() {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: building {path}: {e}");
                return ExitCode::FAILURE;
            }
        };

        println!("scenario: {} ({path})", scenario.name);
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>9} {:>7} {:>9}",
            "mode", "WiFi MB", "LTE MB", "energy J", "bitrate", "stalls", "switches"
        );
        // All modes run as one parallel batch; results come back in
        // declaration order, so the first is the baseline for savings.
        let results = run_batch(jobs);
        // A failed job (e.g. a panic inside one mode's simulation) must
        // not take down the whole comparison: report it and keep going.
        let baseline = results.first().and_then(|r| r.session().ok()).cloned();
        for (i, result) in results.iter().enumerate() {
            let report = match result.session() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: job {}: {e}", result.label);
                    failed = true;
                    continue;
                }
            };
            println!(
                "{:<16} {:>10.2} {:>10.2} {:>10.1} {:>9.2} {:>7} {:>9}",
                result.label,
                report.wifi_bytes as f64 / 1e6,
                report.cell_bytes as f64 / 1e6,
                report.energy.total_j(),
                report.qoe.mean_bitrate_mbps,
                report.qoe.stalls,
                report.qoe.switches,
            );
            if let Some(base) = baseline.as_ref().filter(|_| i > 0) {
                println!(
                    "{:<16} cellular saving {:5.1}% | energy saving {:5.1}% | bitrate change {:+5.1}%",
                    "",
                    report.cell_saving_vs(base) * 100.0,
                    report.energy_saving_vs(base) * 100.0,
                    -report.qoe.bitrate_reduction_vs(&base.qoe) * 100.0,
                );
            }
            if show_chunks {
                let chunks: Vec<ChunkInfo> = report
                    .chunks
                    .iter()
                    .map(|c| ChunkInfo {
                        index: c.index,
                        level: c.level,
                        size: c.size,
                        started: c.started,
                        completed: c.completed,
                        body_dss: c.body_dss,
                    })
                    .collect();
                let splits = chunk_path_splits(&report.records, &chunks);
                let n = chunks.len().min(20);
                println!("{}", render_chunk_bars(&chunks[..n], &splits[..n], 24));
            }
        }
        println!();
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
