//! The `mpdash` CLI: run a JSON scenario and print the full comparison,
//! or replay one mode with tracing on and explain it chunk by chunk.
//!
//! ```sh
//! cargo run --release --bin mpdash -- scenarios/example.json
//! cargo run --release --bin mpdash -- --chunks scenarios/example.json   # + Figure 8 bars
//! cargo run --release --bin mpdash -- explain scenarios/example.json --chunk 40
//! ```

use mpdash::analysis::{chunk_path_splits, render_chunk_bars, ChunkInfo};
use mpdash::explain::{explain_scenario, ExplainOptions};
use mpdash::scenario::Scenario;
use mpdash::session::run_batch;
use mpdash::timeline::{timeline_scenario, TimelineOptions};
use std::process::ExitCode;

/// `mpdash explain <scenario.json> [--chunk N] [--mode LABEL]`: replay
/// one mode with a trace ring attached and print the per-chunk timeline.
fn run_explain(args: &[String]) -> ExitCode {
    let mut opts = ExplainOptions::default();
    let mut path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--chunk" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --chunk needs a chunk index");
                    return ExitCode::from(2);
                };
                opts.chunk = Some(n);
            }
            "--mode" => {
                let Some(label) = it.next() else {
                    eprintln!("error: --mode needs a mode label (e.g. Rate)");
                    return ExitCode::from(2);
                };
                opts.mode = Some(label.clone());
            }
            "--client" => {
                let Some(k) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --client needs a client index");
                    return ExitCode::from(2);
                };
                opts.client = Some(k);
            }
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: mpdash explain <scenario.json> [--chunk N] [--mode LABEL] [--client K]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scenario = match Scenario::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: parsing {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match explain_scenario(&scenario, &opts) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `mpdash timeline <scenario.json> [--quick]`: run the fleet per mode
/// with epoch telemetry forced on and render fleet-wide time series.
fn run_timeline(args: &[String]) -> ExitCode {
    let mut opts = TimelineOptions::default();
    let mut path = None;
    for arg in args {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: mpdash timeline <scenario.json> [--quick]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scenario = match Scenario::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: parsing {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match timeline_scenario(&scenario, &opts) {
        Ok(out) => {
            print!("{}", out.rendered);
            println!("\nndjson: {}", out.ndjson_path.display());
            println!("profile: {}", out.profile_path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Run a fleet scenario: one co-simulated fleet per mode, each as one
/// batch job, rendered as a cross-client comparison. Returns false when
/// any mode failed.
fn run_fleet_scenario(scenario: &Scenario, path: &str) -> bool {
    let jobs = match scenario.fleet_jobs() {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: building {path}: {e}");
            return false;
        }
    };
    let clients = scenario.fleet.as_ref().map(|f| f.clients).unwrap_or(0);
    println!(
        "scenario: {} ({path}) — fleet of {clients} clients per mode",
        scenario.name
    );
    println!(
        "{:<16} {:>10} {:>10} {:>9} {:>13} {:>10} {:>7} {:>9}",
        "mode", "WiFi MB", "LTE MB", "bitrate", "jain(bitrate)", "jain(LTE)", "stalls", "miss rate"
    );
    let results = run_batch(jobs);
    let num = |j: &mpdash::results::Json, key: &str| -> f64 {
        j.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
    };
    let mean_bitrate = |j: &mpdash::results::Json| -> f64 {
        j.get("per_client")
            .and_then(|v| v.as_arr())
            .map(|rows| {
                rows.iter()
                    .map(|r| num(r, "mean_bitrate_mbps"))
                    .sum::<f64>()
                    / rows.len().max(1) as f64
            })
            .unwrap_or(0.0)
    };
    let mut ok = true;
    let baseline_cell = results
        .first()
        .and_then(|r| r.value().ok())
        .map(|j| num(j, "total_cell_bytes"));
    for (i, result) in results.iter().enumerate() {
        let j = match result.value() {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: job {}: {e}", result.label);
                ok = false;
                continue;
            }
        };
        println!(
            "{:<16} {:>10.2} {:>10.2} {:>9.2} {:>13.4} {:>10.4} {:>7} {:>9.3}",
            result.label,
            num(j, "total_wifi_bytes") / 1e6,
            num(j, "total_cell_bytes") / 1e6,
            mean_bitrate(j),
            num(j, "jain_bitrate"),
            num(j, "jain_cell_bytes"),
            num(j, "total_stalls") as u64,
            num(j, "deadline_miss_rate"),
        );
        if let Some(base) = baseline_cell.filter(|_| i > 0) {
            if base > 0.0 {
                println!(
                    "{:<16} cellular saving {:5.1}% across the fleet",
                    "",
                    (1.0 - num(j, "total_cell_bytes") / base) * 100.0,
                );
            }
        }
    }
    println!();
    ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("explain") {
        return run_explain(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("timeline") {
        return run_timeline(&args[1..]);
    }
    let show_chunks = args.iter().any(|a| a == "--chunks");
    let mut failed = false;
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if paths.is_empty() {
        eprintln!("usage: mpdash [--chunks] <scenario.json>...");
        eprintln!("       mpdash explain <scenario.json> [--chunk N] [--mode LABEL] [--client K]");
        eprintln!("       mpdash timeline <scenario.json> [--quick]");
        eprintln!("see scenarios/example.json for the document format");
        return ExitCode::from(2);
    }

    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let scenario = match Scenario::from_json(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: parsing {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if scenario.fleet.is_some() {
            if !run_fleet_scenario(&scenario, path) {
                failed = true;
            }
            continue;
        }
        let jobs = match scenario.jobs() {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: building {path}: {e}");
                return ExitCode::FAILURE;
            }
        };

        println!("scenario: {} ({path})", scenario.name);
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>9} {:>7} {:>9}",
            "mode", "WiFi MB", "LTE MB", "energy J", "bitrate", "stalls", "switches"
        );
        // All modes run as one parallel batch; results come back in
        // declaration order, so the first is the baseline for savings.
        let results = run_batch(jobs);
        // Execution profiles go to stderr so piped stdout stays a clean,
        // machine-independent report.
        for result in &results {
            if let Some(p) = result.profile {
                eprintln!(
                    "[profile] {}: {:.2}s wall, {} events, peak queue {}",
                    result.label,
                    p.wall.as_secs_f64(),
                    p.events_popped,
                    p.peak_queue_depth
                );
            }
        }
        // A failed job (e.g. a panic inside one mode's simulation) must
        // not take down the whole comparison: report it and keep going.
        let baseline = results.first().and_then(|r| r.session().ok()).cloned();
        for (i, result) in results.iter().enumerate() {
            let report = match result.session() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: job {}: {e}", result.label);
                    failed = true;
                    continue;
                }
            };
            println!(
                "{:<16} {:>10.2} {:>10.2} {:>10.1} {:>9.2} {:>7} {:>9}",
                result.label,
                report.wifi_bytes as f64 / 1e6,
                report.cell_bytes as f64 / 1e6,
                report.energy.total_j(),
                report.qoe.mean_bitrate_mbps,
                report.qoe.stalls,
                report.qoe.switches,
            );
            if let Some(base) = baseline.as_ref().filter(|_| i > 0) {
                println!(
                    "{:<16} cellular saving {:5.1}% | energy saving {:5.1}% | bitrate change {:+5.1}%",
                    "",
                    report.cell_saving_vs(base) * 100.0,
                    report.energy_saving_vs(base) * 100.0,
                    -report.qoe.bitrate_reduction_vs(&base.qoe) * 100.0,
                );
            }
            if show_chunks {
                let chunks: Vec<ChunkInfo> = report
                    .chunks
                    .iter()
                    .map(|c| ChunkInfo {
                        index: c.index,
                        level: c.level,
                        size: c.size,
                        started: c.started,
                        completed: c.completed,
                        body_dss: (c.body_dss.start, c.body_dss.end),
                    })
                    .collect();
                let splits = chunk_path_splits(&report.records, &chunks);
                let n = chunks.len().min(20);
                println!("{}", render_chunk_bars(&chunks[..n], &splits[..n], 24));
            }
        }
        println!();
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
