//! `mpdash explain` — replay one scenario mode with tracing enabled and
//! render a per-chunk timeline: the fetch window, the per-path byte
//! split, the deadline margin, and any injected fault overlapping the
//! fetch.
//!
//! The replay is an ordinary deterministic session run — the attached
//! ring sink only observes, so every number printed here is exactly the
//! number an untraced run produces.

use crate::scenario::Scenario;
use mpdash_analysis::{chunk_path_splits, ChunkInfo};
use mpdash_link::FaultScript;
use mpdash_session::{
    RingSink, SessionConfig, SessionReport, StreamingSession, TraceEvent, Tracer,
};
use std::fmt::Write as _;
use std::sync::Arc;

/// What `explain` should show.
#[derive(Debug, Default)]
pub struct ExplainOptions {
    /// Restrict the timeline to one chunk index.
    pub chunk: Option<usize>,
    /// Replay this mode label (e.g. `Rate`). Default: the first MP-DASH
    /// mode in the document, else the first mode.
    pub mode: Option<String>,
    /// For fleet scenarios: replay the whole fleet and explain this
    /// client's timeline (default client 0). Requires a `fleet` key.
    pub client: Option<usize>,
}

/// How one chunk's deadline played out.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeadlineOutcome {
    /// The adapter granted no window (low-buffer Ω bypass).
    Bypassed,
    /// Granted and met with this margin.
    Hit {
        /// The granted window, seconds.
        window_s: f64,
        /// Window minus fetch time (non-negative).
        margin_s: f64,
    },
    /// Granted and overrun by this much.
    Missed {
        /// The granted window, seconds.
        window_s: f64,
        /// Fetch time minus window (positive).
        overrun_s: f64,
    },
}

/// An injected fault window overlapping a chunk's fetch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultOverlap {
    /// Which link the fault was injected on: `"wifi"` or `"cell"`.
    pub path: &'static str,
    /// Fault family name (`rate_collapse`, `disassociation`, ...).
    pub kind: &'static str,
    /// When the fault begins, seconds.
    pub fault_start_s: f64,
    /// When it stops affecting the link (reassociation included).
    pub fault_end_s: f64,
    /// Seconds of the chunk's fetch spent under this fault.
    pub overlap_s: f64,
}

/// Shared-bottleneck queueing experienced by one path during one
/// chunk's fetch window (fleet replays only; private links never wait
/// in a shared queue).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueueWaitSummary {
    /// Path index (0 = wifi, 1 = cellular).
    pub path: usize,
    /// Packets that waited behind other clients' traffic.
    pub waits: u64,
    /// Mean wait, milliseconds.
    pub mean_ms: f64,
    /// Worst wait, milliseconds.
    pub max_ms: f64,
}

/// Scheduler decisions that routed segments onto one path during one
/// chunk's fetch window, with the mean inputs the scheduler saw at pick
/// time (the raw per-segment `SchedulerPick` events would flood the
/// timeline, so they are rolled up per path).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchedulerPickSummary {
    /// Path index (0 = wifi, 1 = cellular).
    pub path: usize,
    /// Segments the scheduler assigned to this path.
    pub picks: u64,
    /// Bytes those segments carried.
    pub bytes: u64,
    /// Mean SRTT the scheduler saw when picking this path, milliseconds
    /// (`None` until the path has an RTT sample).
    pub mean_srtt_ms: Option<f64>,
    /// Mean shared-bottleneck queue depth seen at pick time, bytes
    /// (`None` on private links, which expose no queue signal).
    pub mean_queue_bytes: Option<f64>,
}

/// Per-bottleneck drop attribution for a fleet replay: how many packets
/// the shared queue refused (overflow drop-tail) versus how many the
/// AQM controller dropped early, plus ECN marks delivered in place of
/// drops. Empty for single-session replays (no shared bottleneck).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BottleneckDrops {
    /// Discipline label (`fifo`, `fq`, `pie`, `fq_pie`, `codel`).
    pub discipline: &'static str,
    /// All drops, any reason.
    pub dropped_packets: u64,
    /// Capacity drop-tails (queue full on arrival).
    pub dropped_overflow_packets: u64,
    /// AQM early drops (PIE admission, CoDel dequeue).
    pub dropped_aqm_packets: u64,
    /// Packets delivered carrying an ECN-style mark instead of a drop.
    pub marked_packets: u64,
}

/// One chunk's explained timeline — the structured form the renderer
/// (and the test suite) consumes.
#[derive(Clone, Debug)]
pub struct ChunkExplain {
    /// Chunk index.
    pub index: usize,
    /// Quality level fetched.
    pub level: usize,
    /// Body bytes.
    pub size: u64,
    /// Fetch start, seconds.
    pub started_s: f64,
    /// Fetch completion, seconds.
    pub completed_s: f64,
    /// Body bytes that rode WiFi.
    pub wifi_bytes: u64,
    /// Body bytes that rode cellular.
    pub cell_bytes: u64,
    /// Deadline verdict.
    pub deadline: DeadlineOutcome,
    /// Injected faults overlapping the fetch window.
    pub faults: Vec<FaultOverlap>,
    /// Transport- and lifecycle-level trace lines inside the fetch
    /// window (scheduler toggles, subflow failures/revivals, request
    /// timeouts/abandons/resumes/retries, server-fault windows), as
    /// `(virtual seconds, description)`.
    pub transport: Vec<(f64, String)>,
    /// Per-path shared-queue waiting inside the fetch window,
    /// aggregated (the raw per-packet events would flood the timeline).
    pub queue: Vec<QueueWaitSummary>,
    /// Per-path scheduler-pick attribution inside the fetch window:
    /// which paths the packet scheduler chose and the SRTT/queue-depth
    /// inputs it chose them on.
    pub picks: Vec<SchedulerPickSummary>,
    /// Bytes the losing side of an origin hedge race had already
    /// delivered for this chunk when the race resolved — the per-chunk
    /// attribution of the pool's duplicated-work cost.
    pub hedge_wasted: u64,
}

/// Replay the scenario's chosen mode with a ring sink attached and
/// return the mode label, the full report, and one [`ChunkExplain`] per
/// fetched chunk (all of them — filtering to `--chunk` happens at
/// render time).
pub fn explain_run(
    scenario: &Scenario,
    opts: &ExplainOptions,
) -> Result<
    (
        String,
        SessionReport,
        Vec<ChunkExplain>,
        Vec<BottleneckDrops>,
    ),
    String,
> {
    if scenario.fleet.is_some() || opts.client.is_some() {
        return explain_fleet_run(scenario, opts);
    }
    let configs = scenario.build()?;
    let (label, cfg) = pick_mode(configs, opts.mode.as_deref())?;
    let ring = Arc::new(RingSink::new(1 << 20));
    let report = StreamingSession::run(cfg.with_tracer(Tracer::new(ring.clone())));
    let chunks = explain_chunks(scenario, &report, &ring.events());
    Ok((label, report, chunks, Vec::new()))
}

/// Fleet replay: co-simulate the whole fleet with the trace ring
/// forwarded to exactly one client, and explain that client's timeline
/// (shared-queue waits included). All N clients run — contention is the
/// point — but only client `K`'s events and report are kept.
fn explain_fleet_run(
    scenario: &Scenario,
    opts: &ExplainOptions,
) -> Result<
    (
        String,
        SessionReport,
        Vec<ChunkExplain>,
        Vec<BottleneckDrops>,
    ),
    String,
> {
    let Some(fleet) = &scenario.fleet else {
        return Err("--client requires a 'fleet' key in the scenario".into());
    };
    let k = opts.client.unwrap_or(0);
    if k >= fleet.clients {
        return Err(format!(
            "--client {k} out of range (the fleet has {} clients)",
            fleet.clients
        ));
    }
    let configs = scenario.build()?;
    let (label, cfg) = pick_mode(configs, opts.mode.as_deref())?;
    let ring = Arc::new(RingSink::new(1 << 20));
    let fc = scenario
        .fleet_config(cfg.with_tracer(Tracer::new(ring.clone())))?
        .with_trace_client(k);
    let mut fleet_report = mpdash_fleet::run(&fc);
    let drops = fleet_report
        .bottlenecks
        .iter()
        .map(|b| BottleneckDrops {
            discipline: b.discipline,
            dropped_packets: b.stats.dropped_packets,
            dropped_overflow_packets: b.stats.dropped_overflow_packets,
            dropped_aqm_packets: b.stats.dropped_aqm_packets,
            marked_packets: b.stats.marked_packets,
        })
        .collect();
    let report = fleet_report.sessions.swap_remove(k);
    let chunks = explain_chunks(scenario, &report, &ring.events());
    Ok((
        format!("{label} (client {k}/{})", fleet.clients),
        report,
        chunks,
        drops,
    ))
}

/// Replay and render the timeline as text — the `mpdash explain`
/// subcommand body.
pub fn explain_scenario(scenario: &Scenario, opts: &ExplainOptions) -> Result<String, String> {
    let (label, report, chunks, drops) = explain_run(scenario, opts)?;
    if let Some(want) = opts.chunk {
        if !chunks.iter().any(|c| c.index == want) {
            return Err(format!(
                "chunk {want} not in this session (chunks 0..{})",
                chunks.len()
            ));
        }
    }
    Ok(render(
        scenario, &label, &report, &chunks, &drops, opts.chunk,
    ))
}

fn pick_mode(
    configs: Vec<(String, SessionConfig)>,
    want: Option<&str>,
) -> Result<(String, SessionConfig), String> {
    match want {
        Some(w) => {
            let labels: Vec<String> = configs.iter().map(|(l, _)| l.clone()).collect();
            configs.into_iter().find(|(l, _)| l == w).ok_or_else(|| {
                format!("scenario has no mode labelled '{w}' (available: {labels:?})")
            })
        }
        None => {
            let idx = configs
                .iter()
                .position(|(_, c)| c.mode.is_mpdash())
                .unwrap_or(0);
            Ok(configs.into_iter().nth(idx).expect("validated non-empty"))
        }
    }
}

/// Human name for an origin index: the pool id when the scenario
/// declares one, else the bare index (legacy single-origin runs).
fn origin_name(scenario: &Scenario, origin: usize) -> String {
    scenario
        .origins
        .as_ref()
        .and_then(|o| o.pool.get(origin))
        .map(|o| o.id.clone())
        .unwrap_or_else(|| format!("#{origin}"))
}

fn fault_overlaps(
    path: &'static str,
    script: &FaultScript,
    started_s: f64,
    completed_s: f64,
) -> Vec<FaultOverlap> {
    script
        .events()
        .iter()
        .filter_map(|e| {
            let start = e.at.as_secs_f64();
            let end = e.end().as_secs_f64();
            let overlap = completed_s.min(end) - started_s.max(start);
            (overlap > 0.0).then(|| FaultOverlap {
                path,
                kind: e.kind.name(),
                fault_start_s: start,
                fault_end_s: end,
                overlap_s: overlap,
            })
        })
        .collect()
}

fn explain_chunks(
    scenario: &Scenario,
    report: &SessionReport,
    events: &[(mpdash_sim::SimTime, TraceEvent)],
) -> Vec<ChunkExplain> {
    let infos: Vec<ChunkInfo> = report
        .chunks
        .iter()
        .map(|c| ChunkInfo {
            index: c.index,
            level: c.level,
            size: c.size,
            started: c.started,
            completed: c.completed,
            body_dss: (c.body_dss.start, c.body_dss.end),
        })
        .collect();
    let splits = chunk_path_splits(&report.records, &infos);
    report
        .chunks
        .iter()
        .zip(&splits)
        .map(|(c, split)| {
            let started_s = c.started.as_secs_f64();
            let completed_s = c.completed.as_secs_f64();
            let fetch_s = completed_s - started_s;
            let deadline = match c.deadline {
                None => DeadlineOutcome::Bypassed,
                Some(w) => {
                    let window_s = w.as_secs_f64();
                    if fetch_s <= window_s {
                        DeadlineOutcome::Hit {
                            window_s,
                            margin_s: window_s - fetch_s,
                        }
                    } else {
                        DeadlineOutcome::Missed {
                            window_s,
                            overrun_s: fetch_s - window_s,
                        }
                    }
                }
            };
            let mut faults = fault_overlaps("wifi", &scenario.wifi_faults, started_s, completed_s);
            faults.extend(fault_overlaps(
                "cell",
                &scenario.cell_faults,
                started_s,
                completed_s,
            ));
            let transport = events
                .iter()
                .filter(|(t, _)| {
                    let s = t.as_secs_f64();
                    s >= started_s && s <= completed_s
                })
                .filter_map(|(t, e)| {
                    let line = match e {
                        TraceEvent::SchedulerToggle {
                            cell_enabled,
                            wifi_estimate_mbps,
                            ..
                        } => Some(format!(
                            "scheduler: cellular {} (wifi estimate {wifi_estimate_mbps:.2} Mbps)",
                            if *cell_enabled { "on" } else { "off" },
                        )),
                        TraceEvent::SubflowFailed { path } => {
                            Some(format!("subflow {path} declared failed"))
                        }
                        TraceEvent::SubflowRevived { path } => {
                            Some(format!("subflow {path} revived"))
                        }
                        TraceEvent::RequestTimeout {
                            chunk,
                            cause,
                            after_s,
                        } if *chunk == c.index => {
                            Some(format!("request timeout ({cause}) after {after_s:.2}s"))
                        }
                        TraceEvent::RequestAbandoned {
                            chunk,
                            received,
                            size,
                        } if *chunk == c.index => Some(format!(
                            "abandoned mid-body at {received}/{size} B, cancel sent"
                        )),
                        TraceEvent::RequestResumed {
                            chunk,
                            from,
                            size,
                            level,
                        } if *chunk == c.index => Some(format!(
                            "byte-range resume from byte {from} (target {size} B, level {level})"
                        )),
                        TraceEvent::RequestRetried {
                            chunk,
                            attempt,
                            backoff_s,
                        } if *chunk == c.index => Some(format!(
                            "5xx retry #{attempt} after {backoff_s:.2}s backoff"
                        )),
                        TraceEvent::ServerFaultActivated { kind, until_s } => {
                            Some(format!("server fault {kind} active until {until_s:.1}s"))
                        }
                        TraceEvent::ServerFaultCleared { kind } => {
                            Some(format!("server fault {kind} cleared"))
                        }
                        TraceEvent::OriginRouted {
                            chunk,
                            origin,
                            reason,
                        } if *chunk == c.index => Some(format!(
                            "routed to origin {} ({reason})",
                            origin_name(scenario, *origin)
                        )),
                        TraceEvent::OriginHealth {
                            origin,
                            state,
                            failures,
                        } => Some(format!(
                            "origin {} breaker -> {state} ({failures} consecutive failures)",
                            origin_name(scenario, *origin)
                        )),
                        TraceEvent::Hedge {
                            chunk,
                            origin,
                            hedge_origin,
                            winner,
                            wasted,
                        } if *chunk == c.index => Some(match winner {
                            None => format!(
                                "hedge launched: racing origin {} against stalled {}",
                                origin_name(scenario, *hedge_origin),
                                origin_name(scenario, *origin),
                            ),
                            Some(w) => format!(
                                "hedge resolved: {w} won ({} vs {}), {wasted} B wasted",
                                origin_name(scenario, *origin),
                                origin_name(scenario, *hedge_origin),
                            ),
                        }),
                        TraceEvent::HedgeLoserSettled { chunk, wasted } if *chunk == c.index => {
                            Some(format!("hedge loser drained: {wasted} B duplicated"))
                        }
                        TraceEvent::Cache {
                            chunk,
                            level,
                            outcome,
                            bytes,
                        } if *chunk == c.index => Some(match *outcome {
                            "hit" => {
                                format!("cache hit: level {level} served from the edge ({bytes} B)")
                            }
                            "miss" => {
                                format!("cache miss: level {level} falls through to an origin")
                            }
                            _ => format!("cache insert: level {level} now resident ({bytes} B)"),
                        }),
                        _ => None,
                    };
                    line.map(|l| (t.as_secs_f64(), l))
                })
                .collect();
            // Per-packet shared-queue waits inside the window, rolled
            // up per path.
            let mut agg: [(u64, f64, f64); 2] = [(0, 0.0, 0.0); 2];
            for (t, e) in events {
                let s = t.as_secs_f64();
                if let TraceEvent::SharedQueueWait { path, waited_s, .. } = e {
                    if s >= started_s && s <= completed_s && *path < agg.len() {
                        let (n, sum, max) = &mut agg[*path];
                        *n += 1;
                        *sum += waited_s * 1e3;
                        *max = max.max(waited_s * 1e3);
                    }
                }
            }
            let queue = agg
                .iter()
                .enumerate()
                .filter(|(_, (n, _, _))| *n > 0)
                .map(|(path, (n, sum, max))| QueueWaitSummary {
                    path,
                    waits: *n,
                    mean_ms: sum / *n as f64,
                    max_ms: *max,
                })
                .collect();
            // Scheduler decisions inside the window, rolled up per path:
            // (picks, bytes, srtt sum/count, queue-depth sum/count).
            let mut pick_agg: [(u64, u64, f64, u64, f64, u64); 2] = Default::default();
            for (t, e) in events {
                let s = t.as_secs_f64();
                if let TraceEvent::SchedulerPick {
                    path,
                    len,
                    srtt_ms,
                    queue_bytes,
                } = e
                {
                    if s >= started_s && s <= completed_s && *path < pick_agg.len() {
                        let (n, bytes, srtt_sum, srtt_n, q_sum, q_n) = &mut pick_agg[*path];
                        *n += 1;
                        *bytes += len;
                        if let Some(srtt) = srtt_ms {
                            *srtt_sum += srtt;
                            *srtt_n += 1;
                        }
                        if let Some(q) = queue_bytes {
                            *q_sum += *q as f64;
                            *q_n += 1;
                        }
                    }
                }
            }
            let picks = pick_agg
                .iter()
                .enumerate()
                .filter(|(_, (n, ..))| *n > 0)
                .map(
                    |(path, (n, bytes, srtt_sum, srtt_n, q_sum, q_n))| SchedulerPickSummary {
                        path,
                        picks: *n,
                        bytes: *bytes,
                        mean_srtt_ms: (*srtt_n > 0).then(|| srtt_sum / *srtt_n as f64),
                        mean_queue_bytes: (*q_n > 0).then(|| q_sum / *q_n as f64),
                    },
                )
                .collect();
            // Hedge-loser waste: resolved races carry the hedge-win
            // overlap; a primary win's loser settles separately when
            // its cancelled body finishes draining.
            let hedge_wasted = events
                .iter()
                .filter_map(|(_, e)| match e {
                    TraceEvent::Hedge {
                        chunk,
                        winner: Some(_),
                        wasted,
                        ..
                    } if *chunk == c.index => Some(*wasted),
                    TraceEvent::HedgeLoserSettled { chunk, wasted } if *chunk == c.index => {
                        Some(*wasted)
                    }
                    _ => None,
                })
                .sum();
            ChunkExplain {
                index: c.index,
                level: c.level,
                size: c.size,
                started_s,
                completed_s,
                wifi_bytes: split.wifi_bytes,
                cell_bytes: split.cell_bytes,
                deadline,
                faults,
                transport,
                queue,
                picks,
                hedge_wasted,
            }
        })
        .collect()
}

fn render(
    scenario: &Scenario,
    label: &str,
    report: &SessionReport,
    chunks: &[ChunkExplain],
    drops: &[BottleneckDrops],
    only: Option<usize>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scenario: {}", scenario.name);
    let stats = report.scheduler_stats;
    let _ = writeln!(
        out,
        "mode: {label} | duration {:.1}s | stalls {} | mean bitrate {:.2} Mbps",
        report.duration.as_secs_f64(),
        report.qoe_all.stalls,
        report.qoe_all.mean_bitrate_mbps,
    );
    let _ = writeln!(
        out,
        "scheduler: {} toggles, {} deadlines completed, {} missed",
        stats.toggles, stats.completed_transfers, stats.missed_deadlines,
    );
    let lc = report.lifecycle;
    let _ = writeln!(
        out,
        "lifecycle: {} timeouts, {} abandoned, {} resumed, {} retried, {:.1} KB wasted",
        lc.timeouts,
        lc.abandoned,
        lc.resumed,
        lc.retried,
        lc.wasted_bytes as f64 / 1e3,
    );
    let og = report.origin;
    let _ = writeln!(
        out,
        "origins: {} routed, {} failovers, {} breaker opens, {} hedges \
         ({} primary / {} hedge wins), cache {} hits / {} misses / {} inserts",
        og.routed,
        og.failovers,
        og.breaker_opens,
        og.hedges,
        og.hedge_wins_primary,
        og.hedge_wins_hedge,
        og.cache_hits,
        og.cache_misses,
        og.cache_insertions,
    );
    // Hedge-loser waste, attributed chunk by chunk: the duplicated
    // bytes the pool paid for its tail-latency insurance.
    let total_hedge_wasted: u64 = chunks.iter().map(|c| c.hedge_wasted).sum();
    if total_hedge_wasted > 0 {
        let per_chunk: Vec<String> = chunks
            .iter()
            .filter(|c| c.hedge_wasted > 0)
            .map(|c| format!("chunk {}: {:.1} KB", c.index, c.hedge_wasted as f64 / 1e3))
            .collect();
        let _ = writeln!(
            out,
            "origins: hedge losers wasted {:.1} KB ({})",
            total_hedge_wasted as f64 / 1e3,
            per_chunk.join(", "),
        );
    }
    // Fleet replays: attribute each shared bottleneck's losses by
    // reason — a drop-tail overflow and an AQM early drop call for
    // opposite remedies (more buffer vs an earlier controller).
    for (i, d) in drops.iter().enumerate() {
        let mut line = format!(
            "bottleneck {i} ({}): {} dropped ({} overflow, {} aqm-early)",
            d.discipline, d.dropped_packets, d.dropped_overflow_packets, d.dropped_aqm_packets,
        );
        if d.marked_packets > 0 {
            let _ = write!(line, ", {} ecn-marked", d.marked_packets);
        }
        let _ = writeln!(out, "{line}");
    }
    let n_faults = scenario.wifi_faults.events().len()
        + scenario.cell_faults.events().len()
        + scenario.server_faults.events().len();
    let _ = writeln!(out, "injected faults: {n_faults}");
    for c in chunks {
        if only.is_some_and(|i| i != c.index) {
            continue;
        }
        let total = (c.wifi_bytes + c.cell_bytes).max(1);
        let _ = writeln!(
            out,
            "chunk {:>3}: level {}, {:.2} MB, fetched {:.2}s -> {:.2}s ({:.2}s)",
            c.index,
            c.level,
            c.size as f64 / 1e6,
            c.started_s,
            c.completed_s,
            c.completed_s - c.started_s,
        );
        let _ = writeln!(
            out,
            "    paths: wifi {:.2} MB ({:.0}%), cell {:.2} MB ({:.0}%)",
            c.wifi_bytes as f64 / 1e6,
            c.wifi_bytes as f64 * 100.0 / total as f64,
            c.cell_bytes as f64 / 1e6,
            c.cell_bytes as f64 * 100.0 / total as f64,
        );
        match c.deadline {
            DeadlineOutcome::Bypassed => {
                let _ = writeln!(out, "    deadline: bypassed (no window granted)");
            }
            DeadlineOutcome::Hit { window_s, margin_s } => {
                let _ = writeln!(
                    out,
                    "    deadline: window {window_s:.2}s, margin +{margin_s:.2}s (hit)"
                );
            }
            DeadlineOutcome::Missed {
                window_s,
                overrun_s,
            } => {
                let _ = writeln!(
                    out,
                    "    deadline: window {window_s:.2}s, MISSED by {overrun_s:.2}s"
                );
            }
        }
        for f in &c.faults {
            let _ = writeln!(
                out,
                "    fault: {} {} active {:.1}s-{:.1}s, overlaps fetch for {:.2}s",
                f.path, f.kind, f.fault_start_s, f.fault_end_s, f.overlap_s,
            );
        }
        for p in &c.picks {
            let srtt = match p.mean_srtt_ms {
                Some(ms) => format!("srtt {ms:.1} ms"),
                None => "srtt unsampled".to_string(),
            };
            let queue = match p.mean_queue_bytes {
                Some(b) => format!("shared queue {:.1} KB", b / 1e3),
                None => "no shared queue".to_string(),
            };
            let _ = writeln!(
                out,
                "    sched pick: {} {} segs ({:.2} MB), mean inputs: {srtt}, {queue}",
                if p.path == 0 { "wifi" } else { "cell" },
                p.picks,
                p.bytes as f64 / 1e6,
            );
        }
        for q in &c.queue {
            let _ = writeln!(
                out,
                "    shared queue: {} {} packets waited, mean {:.1} ms, max {:.1} ms",
                if q.path == 0 { "wifi" } else { "cell" },
                q.waits,
                q.mean_ms,
                q.max_ms,
            );
        }
        for (t, line) in &c.transport {
            let _ = writeln!(out, "    @{t:.2}s {line}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tight session built to miss deadlines inside the injected WiFi
    /// disassociation: cellular is far too slow to hold the window alone.
    const FAULTED: &str = r#"{
        "name": "forced-miss",
        "video": {"custom": {"levels_mbps": [0.8, 1.6], "chunk_secs": 2, "n_chunks": 30}},
        "wifi": {"constant": 4.0},
        "cell": {"constant": 0.25},
        "abr": "festive",
        "buffer_secs": 8,
        "modes": ["vanilla", "mpdash_rate"],
        "wifi_faults": [
            {"disassociation": {"at_s": 14, "secs": 20, "reassoc_s": 2}}
        ]
    }"#;

    /// The origin freezes one response mid-body for 30 s; the
    /// deadline-aware lifecycle must cancel and resume well before that.
    const SERVER_FAULTED: &str = r#"{
        "name": "stalled-origin",
        "video": {"custom": {"levels_mbps": [0.58, 1.01, 1.47, 2.41, 3.94], "chunk_secs": 4, "n_chunks": 20}},
        "wifi": {"constant": 4.5},
        "cell": {"constant": 4.0},
        "abr": "festive",
        "buffer_secs": 10,
        "modes": ["mpdash_rate"],
        "server_faults": [
            {"stalled_body": {"at_s": 8, "secs": 6, "stall_s": 30, "after_fraction": 0.5}}
        ],
        "lifecycle": "deadline_aware"
    }"#;

    #[test]
    fn timeline_shows_timeout_abandon_resume_for_a_stalled_body() {
        let sc = Scenario::from_json(SERVER_FAULTED).unwrap();
        let (_, report, _, _) = explain_run(&sc, &ExplainOptions::default()).unwrap();
        assert!(
            report.lifecycle.abandoned >= 1,
            "the frozen body must force an abandonment: {:?}",
            report.lifecycle
        );
        let text = explain_scenario(&sc, &ExplainOptions::default()).unwrap();
        assert!(text.contains("request timeout (stall)"), "{text}");
        assert!(text.contains("abandoned mid-body"), "{text}");
        assert!(text.contains("byte-range resume from byte"), "{text}");
        assert!(text.contains("server fault stalled_body active"), "{text}");
        assert!(text.contains("lifecycle: "), "{text}");
    }

    /// The primary origin blackholes mid-run; the pool's breakers and
    /// the hedge policy steer traffic to the named backup, and an edge
    /// cache fronts everything.
    const MULTI_ORIGIN: &str = r#"{
        "name": "dark-primary",
        "video": {"custom": {"levels_mbps": [0.58, 1.01, 1.47, 2.41, 3.94], "chunk_secs": 4, "n_chunks": 25}},
        "wifi": {"constant": 4.5},
        "cell": {"constant": 4.0},
        "abr": "festive",
        "buffer_secs": 10,
        "modes": ["mpdash_rate"],
        "lifecycle": "deadline_aware",
        "origins": {
            "hedge_quantile": 0.5,
            "pool": [
                {"id": "primary", "faults": [{"blackhole": {"at_s": 20, "secs": 60}}]},
                {"id": "backup", "rtt_penalty_ms": 20}
            ]
        },
        "cache": {"capacity_mb": 64}
    }"#;

    #[test]
    fn timeline_attributes_origin_routing_hedges_and_cache() {
        let sc = Scenario::from_json(MULTI_ORIGIN).unwrap();
        let (_, report, chunks, _) = explain_run(&sc, &ExplainOptions::default()).unwrap();
        assert!(
            report.origin.breaker_opens >= 1,
            "the blackhole must trip the primary's breaker: {:?}",
            report.origin
        );
        let text = explain_scenario(&sc, &ExplainOptions::default()).unwrap();
        // Every chunk names the origin that served it, by pool id.
        assert!(
            text.contains("routed to origin primary (initial)"),
            "{text}"
        );
        assert!(text.contains("breaker -> open"), "{text}");
        assert!(text.contains("routed to origin backup"), "{text}");
        // A cold cache misses, then completed chunks populate it.
        assert!(text.contains("cache miss: level"), "{text}");
        assert!(text.contains("cache insert: level"), "{text}");
        // The header rolls up the pool counters.
        assert!(text.contains("origins: "), "{text}");
        assert!(text.contains("breaker opens"), "{text}");
        // Hedge-loser waste is attributed per chunk whenever a resolved
        // race left duplicated bytes behind.
        let wasted: u64 = chunks.iter().map(|c| c.hedge_wasted).sum();
        if wasted > 0 {
            assert!(text.contains("hedge losers wasted"), "{text}");
            let attributed = chunks
                .iter()
                .find(|c| c.hedge_wasted > 0)
                .expect("nonzero total implies a nonzero chunk");
            assert!(
                text.contains(&format!("chunk {}:", attributed.index)),
                "{text}"
            );
        } else {
            assert!(!text.contains("hedge losers wasted"), "{text}");
        }
    }

    /// The primary stalls briefly mid-body: hedges launch, and whichever
    /// side loses has already delivered duplicate bytes — the waste the
    /// origins summary must attribute chunk by chunk.
    const HEDGED: &str = r#"{
        "name": "hedged-primary",
        "video": {"custom": {"levels_mbps": [0.58, 1.01, 1.47, 2.41, 3.94], "chunk_secs": 4, "n_chunks": 25}},
        "wifi": {"constant": 4.5},
        "cell": {"constant": 4.0},
        "abr": "festive",
        "buffer_secs": 10,
        "modes": ["mpdash_rate"],
        "lifecycle": "wait_forever",
        "origins": {
            "hedge_quantile": 0.5,
            "pool": [
                {"id": "primary", "faults": [{"stalled_body": {"at_s": 15, "secs": 40, "stall_s": 3, "after_fraction": 0.5}}]},
                {"id": "backup", "rtt_penalty_ms": 20}
            ]
        }
    }"#;

    #[test]
    fn attributes_hedge_loser_waste_per_chunk() {
        let sc = Scenario::from_json(HEDGED).unwrap();
        let (_, report, chunks, _) = explain_run(&sc, &ExplainOptions::default()).unwrap();
        assert!(report.origin.hedges >= 1, "{:?}", report.origin);
        let wasted: u64 = chunks.iter().map(|c| c.hedge_wasted).sum();
        assert!(
            wasted > 0,
            "a resolved race with a recovering loser must leave duplicate bytes"
        );
        assert!(
            wasted <= report.lifecycle.wasted_bytes,
            "per-chunk attribution cannot exceed the session's waste ledger \
             ({wasted} > {})",
            report.lifecycle.wasted_bytes
        );
        let text = explain_scenario(&sc, &ExplainOptions::default()).unwrap();
        assert!(text.contains("hedge losers wasted"), "{text}");
        let attributed = chunks.iter().find(|c| c.hedge_wasted > 0).unwrap();
        assert!(
            text.contains(&format!(
                "chunk {}: {:.1} KB",
                attributed.index,
                attributed.hedge_wasted as f64 / 1e3
            )),
            "{text}"
        );
    }

    #[test]
    fn defaults_to_the_first_mpdash_mode() {
        let sc = Scenario::from_json(FAULTED).unwrap();
        let configs = sc.build().unwrap();
        let (label, cfg) = pick_mode(configs, None).unwrap();
        assert_eq!(label, "Rate");
        assert!(cfg.mode.is_mpdash());
        let err = pick_mode(sc.build().unwrap(), Some("Duration")).unwrap_err();
        assert!(err.contains("no mode labelled"), "{err}");
    }

    #[test]
    fn attributes_a_forced_deadline_miss_to_the_fault_window() {
        let sc = Scenario::from_json(FAULTED).unwrap();
        let (label, report, chunks, _) = explain_run(&sc, &ExplainOptions::default()).unwrap();
        assert_eq!(label, "Rate");
        assert!(
            report.scheduler_stats.missed_deadlines > 0,
            "the outage must force at least one deadline miss"
        );
        let miss = chunks
            .iter()
            .find(|c| matches!(c.deadline, DeadlineOutcome::Missed { .. }))
            .expect("a missed chunk appears in the timeline");
        assert!(
            miss.faults
                .iter()
                .any(|f| f.path == "wifi" && f.kind == "disassociation" && f.overlap_s > 0.0),
            "the missed chunk's fetch window names the injected fault: {:?}",
            miss.faults
        );
        // Chunks fetched entirely before the fault carry no overlap.
        let clean = chunks
            .iter()
            .find(|c| c.completed_s < 14.0)
            .expect("an early chunk");
        assert!(clean.faults.is_empty());
    }

    #[test]
    fn rendered_timeline_names_paths_margin_and_fault() {
        let sc = Scenario::from_json(FAULTED).unwrap();
        let text = explain_scenario(&sc, &ExplainOptions::default()).unwrap();
        assert!(text.contains("paths: wifi"), "{text}");
        assert!(text.contains("deadline: window"), "{text}");
        assert!(text.contains("MISSED by"), "{text}");
        assert!(text.contains("wifi disassociation active"), "{text}");
        // Private links: pick attribution shows SRTT but no queue signal.
        assert!(text.contains("sched pick: wifi"), "{text}");
        assert!(text.contains("no shared queue"), "{text}");
        // --chunk filters to one chunk block.
        let one = explain_scenario(
            &sc,
            &ExplainOptions {
                chunk: Some(3),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(one.matches("chunk ").count(), 1, "{one}");
        let err = explain_scenario(
            &sc,
            &ExplainOptions {
                chunk: Some(9999),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("not in this session"), "{err}");
    }

    /// Four clients on a deliberately scarce shared AP: the replayed
    /// client's timeline must surface the time its packets spent queued
    /// behind the other three.
    const FLEET: &str = r#"{
        "name": "fleet-explain",
        "video": {"custom": {"levels_mbps": [0.58, 1.01, 1.47], "chunk_secs": 4, "n_chunks": 8}},
        "wifi": {"constant": 50.0},
        "cell": {"constant": 30.0},
        "abr": "festive",
        "buffer_secs": 20,
        "modes": ["vanilla", "mpdash_rate"],
        "fleet": {
            "clients": 4,
            "stagger_s": 0.5,
            "shared": [
                {"rate_mbps": 3.0, "discipline": "fq", "paths": ["wifi"]},
                {"rate_mbps": 2.0, "discipline": "fifo", "paths": ["cell"]}
            ]
        }
    }"#;

    #[test]
    fn fleet_replay_explains_one_client_with_shared_queue_waits() {
        let sc = Scenario::from_json(FLEET).unwrap();
        let (label, report, chunks, _) = explain_run(
            &sc,
            &ExplainOptions {
                client: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(label, "Rate (client 2/4)");
        assert_eq!(chunks.len(), 8, "every chunk of client 2 is explained");
        assert_eq!(report.chunks.len(), 8);
        assert!(
            chunks.iter().any(|c| !c.queue.is_empty()),
            "a contended fleet must show shared-queue waiting"
        );
        let text = explain_scenario(
            &sc,
            &ExplainOptions {
                client: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(text.contains("client 2/4"), "{text}");
        assert!(text.contains("shared queue: "), "{text}");
        assert!(text.contains("packets waited"), "{text}");
        // Each bottleneck's losses are attributed by reason.
        assert!(text.contains("bottleneck 0 (fq):"), "{text}");
        assert!(text.contains("overflow"), "{text}");
        assert!(text.contains("aqm-early"), "{text}");
        // On a shared AP the pick attribution carries the queue-depth
        // input the scheduler saw.
        let picked = chunks.iter().flat_map(|c| c.picks.iter());
        assert!(
            picked.clone().any(|p| p.mean_queue_bytes.is_some()),
            "shared-bottleneck paths expose queue depth at pick time"
        );
        assert!(picked.clone().any(|p| p.mean_srtt_ms.is_some()));
        assert!(text.contains("sched pick: "), "{text}");

        // A fleet scenario with no --client defaults to client 0.
        let (label, _, _, _) = explain_run(&sc, &ExplainOptions::default()).unwrap();
        assert_eq!(label, "Rate (client 0/4)");

        // Out-of-range clients and non-fleet documents are named errors.
        let err = explain_run(
            &sc,
            &ExplainOptions {
                client: Some(99),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let plain = Scenario::from_json(FAULTED).unwrap();
        let err = explain_run(
            &plain,
            &ExplainOptions {
                client: Some(0),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("requires a 'fleet' key"), "{err}");
    }
}
