//! # MP-DASH
//!
//! A full Rust reproduction of **"MP-DASH: Adaptive Video Streaming Over
//! Preference-Aware Multipath"** (CoNEXT 2016).
//!
//! This umbrella crate re-exports every component of the workspace so
//! examples and downstream users can depend on a single crate:
//!
//! * [`sim`] — deterministic discrete-event simulation core.
//! * [`link`] — simulated WiFi/LTE links, bandwidth profiles, shaping.
//! * [`mptcp`] — userspace MPTCP model (subflows, congestion control,
//!   minRTT/round-robin packet schedulers, subflow enable/disable overlay).
//! * [`core`] — the paper's contribution: the deadline-aware MP-DASH
//!   scheduler (Algorithm 1), the offline-optimal solver, and the
//!   Holt-Winters throughput predictor.
//! * [`http`] — minimal HTTP/1.1 over the simulated transport.
//! * [`dash`] — DASH player, rate-adaptation algorithms (GPAC, FESTIVE,
//!   BBA-2, BBA-C, MPC) and the MP-DASH video adapter.
//! * [`energy`] — LTE RRC/DRX + WiFi radio energy models.
//! * [`trace`] — the bandwidth-profile corpus (Table 1, the 33-location
//!   field corpus, the mobility walk).
//! * [`analysis`] — the multipath video analysis tool (§6 of the paper).
//! * [`results`] — typed experiment results, JSON artifacts, rendering.
//! * [`session`] — the end-to-end experiment driver that wires everything
//!   into a streaming session.
//! * [`fleet`] — multi-session co-simulation over shared bottlenecks.
//! * [`scenario`] — JSON scenario documents for the `mpdash` CLI runner.
//!
//! ## Quickstart
//!
//! ```
//! use mpdash::session::{SessionConfig, StreamingSession, TransportMode};
//! use mpdash::dash::abr::AbrKind;
//! use mpdash::trace::table1;
//!
//! // Stream Big Buck Bunny over WiFi 3.8 Mbps + LTE 3.0 Mbps with the
//! // MP-DASH scheduler (rate-based deadlines) and FESTIVE adaptation.
//! let cfg = SessionConfig::controlled(
//!     table1::synthetic_profile_pair(3.8, 3.0, 0.10, 42),
//!     AbrKind::Festive,
//!     TransportMode::mpdash_rate_based(),
//! );
//! let report = StreamingSession::run(cfg);
//! assert_eq!(report.qoe.stalls, 0);
//! ```

pub mod explain;
pub mod scenario;
pub mod timeline;

pub use mpdash_analysis as analysis;
pub use mpdash_core as core;
pub use mpdash_dash as dash;
pub use mpdash_energy as energy;
pub use mpdash_fleet as fleet;
pub use mpdash_http as http;
pub use mpdash_link as link;
pub use mpdash_mptcp as mptcp;
pub use mpdash_obs as obs;
pub use mpdash_results as results;
pub use mpdash_session as session;
pub use mpdash_sim as sim;
pub use mpdash_trace as trace;
