//! JSON scenario definitions for the `mpdash` CLI: describe a network, a
//! video, an ABR algorithm and a set of transport policies in a file, and
//! the runner replays the whole comparison.
//!
//! See `scenarios/example.json` for a complete document. The network can
//! be a constant rate, a seeded synthetic trace, or an external profile
//! in the `mpdash-trace` JSON format (so measured traces plug straight
//! in).

use mpdash_dash::abr::AbrKind;
use mpdash_dash::video::Video;
use mpdash_fleet::{fleet_job, FleetCacheSpec, FleetConfig, SharedLinkSpec};
use mpdash_http::{OriginPoolConfig, OriginSpec};
use mpdash_link::{
    AqmConfig, BandwidthProfile, FaultScript, GilbertElliott, LinkConfig, PathId, QueueDiscipline,
    SharedBottleneckConfig,
};
use mpdash_mptcp::SchedulerSpec;
use mpdash_obs::TelemetrySpec;
use mpdash_results::Json;
use mpdash_session::{Job, LifecyclePolicy, ServerFaultScript, SessionConfig, TransportMode};
use mpdash_sim::{Rate, SimDuration, SimTime};
use mpdash_trace::io::ProfileSpec;
use mpdash_trace::synth::SynthSpec;

/// A network path's bandwidth, one of three sources.
#[derive(Debug)]
pub enum BandwidthSpec {
    /// Fixed rate in Mbps.
    Constant(f64),
    /// Seeded synthetic AR(1) trace.
    Synthetic {
        /// Mean rate, Mbps.
        mean_mbps: f64,
        /// σ as a fraction of the mean.
        sigma: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Load an `mpdash-trace` JSON profile from this path.
    File(String),
}

impl BandwidthSpec {
    fn build(&self) -> Result<BandwidthProfile, String> {
        match self {
            BandwidthSpec::Constant(mbps) => {
                // Zero is a legitimate dead path; negative (or NaN from a
                // hand-edited file) is a typo worth naming precisely.
                if mbps.is_nan() || *mbps < 0.0 {
                    return Err(format!("constant bandwidth must be >= 0 Mbps, got {mbps}"));
                }
                Ok(BandwidthProfile::constant_mbps(*mbps))
            }
            BandwidthSpec::Synthetic {
                mean_mbps,
                sigma,
                seed,
            } => {
                if mean_mbps.is_nan() || *mean_mbps <= 0.0 {
                    return Err(format!(
                        "synthetic 'mean_mbps' must be > 0, got {mean_mbps}"
                    ));
                }
                if sigma.is_nan() || *sigma < 0.0 {
                    return Err(format!("synthetic 'sigma' must be >= 0, got {sigma}"));
                }
                Ok(SynthSpec::new(*mean_mbps, *sigma, *seed).profile())
            }
            BandwidthSpec::File(path) => {
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
                let spec =
                    ProfileSpec::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))?;
                spec.to_profile().map_err(|e| format!("{path}: {e}"))
            }
        }
    }

    fn mean(&self, profile: &BandwidthProfile) -> Rate {
        profile.mean_rate(SimDuration::from_secs(120))
    }
}

/// Which video to stream.
#[derive(Debug)]
pub enum VideoSpec {
    /// A Table 3 dataset video by name: `big_buck_bunny`,
    /// `red_bull_playstreets`, `tears_of_steel`, `tears_of_steel_hd`.
    Named(String),
    /// A custom ladder.
    Custom {
        /// Average bitrates per level, Mbps, ascending.
        levels_mbps: Vec<f64>,
        /// Chunk playout duration, seconds.
        chunk_secs: u64,
        /// Number of chunks.
        n_chunks: usize,
    },
}

impl VideoSpec {
    fn build(&self) -> Result<Video, String> {
        match self {
            VideoSpec::Named(name) => match name.as_str() {
                "big_buck_bunny" => Ok(Video::big_buck_bunny()),
                "red_bull_playstreets" => Ok(Video::red_bull_playstreets()),
                "tears_of_steel" => Ok(Video::tears_of_steel()),
                "tears_of_steel_hd" => Ok(Video::tears_of_steel_hd()),
                other => Err(format!("unknown video '{other}'")),
            },
            VideoSpec::Custom {
                levels_mbps,
                chunk_secs,
                n_chunks,
            } => {
                if levels_mbps.is_empty() || *chunk_secs == 0 || *n_chunks == 0 {
                    return Err("custom video needs levels, chunk_secs, n_chunks".into());
                }
                for pair in levels_mbps.windows(2) {
                    // A NaN level must fail validation too, so test the
                    // positive "strictly ascending" predicate.
                    let ascending = pair[1] > pair[0];
                    if !ascending {
                        return Err(format!(
                            "'levels_mbps' must be strictly ascending, got {:?} before {:?}",
                            pair[0], pair[1]
                        ));
                    }
                }
                let first_positive = levels_mbps[0] > 0.0;
                if !first_positive {
                    return Err(format!(
                        "'levels_mbps' must all be > 0, got {}",
                        levels_mbps[0]
                    ));
                }
                Ok(Video::new(
                    "custom",
                    levels_mbps,
                    SimDuration::from_secs(*chunk_secs),
                    *n_chunks,
                ))
            }
        }
    }
}

/// Which transport policy a mode entry runs.
#[derive(Debug)]
pub enum ModeKind {
    /// Vanilla MPTCP.
    Vanilla,
    /// Single-path WiFi.
    WifiOnly,
    /// MP-DASH with rate-based deadlines.
    MpdashRate,
    /// MP-DASH with duration-based deadlines.
    MpdashDuration,
    /// Cellular throttled at the given kbps.
    Throttled(u64),
}

/// A transport policy to compare, with an optional per-mode MPTCP
/// packet-scheduler override.
#[derive(Debug)]
pub struct ModeSpec {
    /// The transport policy.
    pub kind: ModeKind,
    /// Packet scheduler: `min_rtt` (the default when absent),
    /// `round_robin`, or `qaware`.
    pub scheduler: Option<SchedulerSpec>,
}

impl ModeSpec {
    fn build(&self) -> TransportMode {
        match self.kind {
            ModeKind::Vanilla => TransportMode::Vanilla,
            ModeKind::WifiOnly => TransportMode::WifiOnly,
            ModeKind::MpdashRate => TransportMode::mpdash_rate_based(),
            ModeKind::MpdashDuration => TransportMode::mpdash_duration_based(),
            ModeKind::Throttled(kbps) => TransportMode::Throttled { kbps },
        }
    }

    /// Display label; a non-default scheduler is suffixed so grid rows
    /// stay distinguishable (e.g. `Rate+qaware`).
    pub fn label(&self) -> String {
        let base = self.build().label();
        match self.scheduler {
            None => base,
            Some(s) => format!("{base}+{}", s.label()),
        }
    }
}

/// One shared bottleneck in a fleet topology (`fleet.shared[]`).
#[derive(Debug)]
pub struct SharedSpec {
    /// Shared capacity, Mbps.
    pub rate_mbps: f64,
    /// Queue bound in bytes (default: the bottleneck's 128 KiB).
    pub capacity_bytes: Option<u64>,
    /// `fifo` (drop-tail), `fq` (per-flow DRR), or an AQM: `pie`,
    /// `fq_pie` (DRR + per-flow PIE), `codel`.
    pub discipline: String,
    /// DRR quantum in bytes for `fq`/`fq_pie` (default 1540).
    pub quantum: Option<u64>,
    /// AQM queue-delay target, ms (default: PIE 15, CoDel 5).
    pub target_delay_ms: Option<f64>,
    /// AQM update/sliding interval, ms (default: PIE 15, CoDel 100).
    pub interval_ms: Option<f64>,
    /// PIE proportional gain per second (default 0.125).
    pub alpha: Option<f64>,
    /// PIE derivative gain per second (default 1.25).
    pub beta: Option<f64>,
    /// Mark instead of dropping (ECN-style early signal to senders).
    pub ecn: Option<bool>,
    /// Which of each client's paths subscribe: `wifi` and/or `cell`.
    pub paths: Vec<String>,
}

impl SharedSpec {
    /// The [`AqmConfig`] these knobs describe, from the given defaults.
    fn aqm_config(&self, base: AqmConfig) -> AqmConfig {
        let mut a = base;
        if let Some(t) = self.target_delay_ms {
            a = a.with_target_ms(t);
        }
        if let Some(i) = self.interval_ms {
            a = a.with_interval_ms(i);
        }
        if let Some(al) = self.alpha {
            a = a.with_alpha(al);
        }
        if let Some(be) = self.beta {
            a = a.with_beta(be);
        }
        if let Some(e) = self.ecn {
            a = a.with_ecn(e);
        }
        a
    }

    fn build(&self) -> SharedLinkSpec {
        let mut config = SharedBottleneckConfig::fifo_mbps(self.rate_mbps);
        match self.discipline.as_str() {
            "fq" => {
                config = config.with_discipline(QueueDiscipline::FlowQueue {
                    quantum: self.quantum.unwrap_or(1540),
                });
            }
            "pie" => {
                config =
                    config.with_discipline(QueueDiscipline::Pie(self.aqm_config(AqmConfig::pie())));
            }
            "fq_pie" => {
                config = config.with_discipline(QueueDiscipline::FqPie {
                    quantum: self.quantum.unwrap_or(1540),
                    aqm: self.aqm_config(AqmConfig::pie()),
                });
            }
            "codel" => {
                config = config
                    .with_discipline(QueueDiscipline::Codel(self.aqm_config(AqmConfig::codel())));
            }
            _ => {}
        }
        if let Some(cap) = self.capacity_bytes {
            config = config.with_capacity(cap);
        }
        SharedLinkSpec {
            config,
            paths: self
                .paths
                .iter()
                .map(|p| {
                    if p == "wifi" {
                        PathId::WIFI
                    } else {
                        PathId::CELLULAR
                    }
                })
                .collect(),
        }
    }
}

/// Seeded fleet churn (`fleet.churn`): deterministic exponential
/// inter-arrivals and viewing-time departures replace the fixed
/// stagger, so sessions arrive, watch for a drawn duration, and leave
/// with a clean partial report.
#[derive(Debug)]
pub struct ChurnSpec {
    /// Mean gap between consecutive arrivals, seconds.
    pub mean_interarrival_s: f64,
    /// Mean viewing time before the viewer closes the tab, seconds.
    pub mean_watch_s: f64,
    /// Floor on drawn viewing times, seconds (default: the fleet
    /// crate's one-chunk floor).
    pub min_watch_s: Option<f64>,
}

impl ChurnSpec {
    fn build(&self) -> mpdash_fleet::ChurnSpec {
        let mut spec = mpdash_fleet::ChurnSpec::new(
            SimDuration::from_secs_f64(self.mean_interarrival_s),
            SimDuration::from_secs_f64(self.mean_watch_s),
        );
        if let Some(floor) = self.min_watch_s {
            spec = spec.with_min_watch(SimDuration::from_secs_f64(floor));
        }
        spec
    }
}

/// One correlated fault domain (`fleet.fault_domains[]`): a set of
/// client indices sharing wifi/cell/server fault scripts — a regional
/// AP outage, a sector brown-out, a bad origin shard — composed with
/// whatever per-client faults the base session already carries.
#[derive(Debug)]
pub struct FaultDomainSpec {
    /// Domain label for traces and reports.
    pub label: String,
    /// Client indices the scripts apply to.
    pub members: Vec<usize>,
    /// Faults on every member's WiFi link (same entry format as the
    /// top-level `wifi_faults`).
    pub wifi_faults: FaultScript,
    /// Faults on every member's cellular link.
    pub cell_faults: FaultScript,
    /// Server faults on every member's origin.
    pub server_faults: ServerFaultScript,
}

impl FaultDomainSpec {
    fn build(&self) -> mpdash_fleet::FaultDomainSpec {
        let mut spec = mpdash_fleet::FaultDomainSpec::new(self.label.clone(), self.members.clone());
        if !self.wifi_faults.is_empty() {
            spec = spec.with_wifi(self.wifi_faults.clone());
        }
        if !self.cell_faults.is_empty() {
            spec = spec.with_cell(self.cell_faults.clone());
        }
        if !self.server_faults.is_empty() {
            spec = spec.with_server(self.server_faults.clone());
        }
        spec
    }
}

/// Overload protection (`fleet.overload`): arrivals past `max_active`
/// concurrent sessions are shed deterministically (newest first) and
/// reported as shed rather than admitted to collapse the shared queues.
#[derive(Debug)]
pub struct OverloadSpec {
    /// Admission cap on concurrently active sessions.
    pub max_active: usize,
    /// Also shed when the shared queues' total backlog exceeds this
    /// many bytes (absent: cap on concurrency alone).
    pub queue_threshold_bytes: Option<u64>,
}

impl OverloadSpec {
    fn build(&self) -> mpdash_fleet::OverloadPolicy {
        let mut policy = mpdash_fleet::OverloadPolicy::max_active(self.max_active);
        if let Some(bytes) = self.queue_threshold_bytes {
            policy = policy.with_queue_threshold(bytes);
        }
        policy
    }
}

/// Multi-client co-simulation topology (the optional `fleet` key): N
/// copies of the session, staggered starts, subflows subscribed to
/// shared bottlenecks instead of private links.
#[derive(Debug)]
pub struct FleetSpec {
    /// Number of concurrent clients.
    pub clients: usize,
    /// Start-time spacing between consecutive clients, seconds
    /// (default 0.5).
    pub stagger_s: f64,
    /// Extra one-way delay per client index, milliseconds (default 0):
    /// client `k` adds `k * rtt_skew_ms` on both private links.
    pub rtt_skew_ms: u64,
    /// Base fleet seed (default 1).
    pub seed: u64,
    /// Shared bottlenecks; may be empty (private links, a
    /// no-contention control fleet).
    pub shared: Vec<SharedSpec>,
    /// Seeded arrivals/departures; when present the fixed `stagger_s`
    /// is superseded by the churn plan.
    pub churn: Option<ChurnSpec>,
    /// Correlated fault domains; may be empty.
    pub fault_domains: Vec<FaultDomainSpec>,
    /// Overload shedding; absent admits every arrival.
    pub overload: Option<OverloadSpec>,
    /// Arm (or disarm) the runtime invariant watchdog for this fleet;
    /// absent keeps the fleet crate's default.
    pub watchdog: Option<bool>,
}

/// One origin in a multi-origin pool (`origins.pool[]`).
#[derive(Debug)]
pub struct OriginEntrySpec {
    /// Human-readable origin id; must be unique within the pool.
    pub id: String,
    /// Extra first-byte delay this origin adds, milliseconds
    /// (default 0) — models its longer network path.
    pub rtt_penalty_ms: u64,
    /// Server faults scripted on this origin only (same entry format as
    /// the top-level `server_faults`). Empty when absent.
    pub faults: ServerFaultScript,
}

/// Multi-origin serving policy (the optional `origins` key): a pool of
/// health-tracked origins with circuit breakers, optional hedging, and
/// per-origin fault scripts.
#[derive(Debug)]
pub struct OriginsSpec {
    /// The pool, in priority order.
    pub pool: Vec<OriginEntrySpec>,
    /// Hedge when a deadline-granted request has stalled for this
    /// fraction of its deadline budget, in `(0, 1]`. Absent disables
    /// hedging.
    pub hedge_quantile: Option<f64>,
    /// Consecutive failures that trip a breaker Open (default 2).
    pub failure_threshold: Option<u64>,
}

impl OriginsSpec {
    fn build(&self) -> OriginPoolConfig {
        let specs = self
            .pool
            .iter()
            .map(|o| {
                let mut s = OriginSpec::new(o.id.clone())
                    .with_rtt_penalty(SimDuration::from_millis(o.rtt_penalty_ms));
                if !o.faults.is_empty() {
                    s = s.with_faults(o.faults.clone());
                }
                s
            })
            .collect();
        let mut cfg = OriginPoolConfig::new(specs);
        if let Some(q) = self.hedge_quantile {
            cfg = cfg.with_hedge_quantile(q);
        }
        if let Some(t) = self.failure_threshold {
            cfg = cfg.with_failure_threshold(t as u32);
        }
        cfg
    }
}

/// Shared segment cache in front of the origins (the optional `cache`
/// key).
#[derive(Debug)]
pub struct CacheSpec {
    /// Cache capacity, megabytes.
    pub capacity_mb: f64,
    /// Modeled delivery delay of a cache hit, milliseconds (default 5).
    pub edge_delay_ms: u64,
}

impl CacheSpec {
    fn capacity_bytes(&self) -> u64 {
        (self.capacity_mb * (1 << 20) as f64) as u64
    }

    fn edge_delay(&self) -> SimDuration {
        SimDuration::from_millis(self.edge_delay_ms)
    }
}

/// A complete scenario document.
#[derive(Debug)]
pub struct Scenario {
    /// Scenario title for the report.
    pub name: String,
    /// Video selection.
    pub video: VideoSpec,
    /// WiFi bandwidth.
    pub wifi: BandwidthSpec,
    /// Cellular bandwidth.
    pub cell: BandwidthSpec,
    /// WiFi round-trip time, milliseconds (default 50).
    pub wifi_rtt_ms: u64,
    /// Cellular round-trip time, milliseconds (default 55).
    pub cell_rtt_ms: u64,
    /// Rate-adaptation algorithm: `gpac`, `festive`, `bba`, `bba_c`,
    /// `mpc`.
    pub abr: String,
    /// Player buffer capacity in seconds (default 40).
    pub buffer_secs: u64,
    /// Transport policies to compare, in order.
    pub modes: Vec<ModeSpec>,
    /// Faults injected on the WiFi link (empty when the document has no
    /// `wifi_faults` array). The `explain` timeline reads these windows
    /// back to attribute deadline misses.
    pub wifi_faults: FaultScript,
    /// Faults injected on the cellular link.
    pub cell_faults: FaultScript,
    /// Faults injected at the origin server (empty when the document has
    /// no `server_faults` array): 5xx bursts, stalled response bodies,
    /// slow first bytes.
    pub server_faults: ServerFaultScript,
    /// Request-lifecycle policy: `wait_forever` (default), `retry_only`,
    /// or `deadline_aware`.
    pub lifecycle: LifecyclePolicy,
    /// Optional multi-client fleet topology. When present the runner
    /// co-simulates `fleet.clients` sessions per mode instead of one.
    pub fleet: Option<FleetSpec>,
    /// Optional multi-origin pool. When present every mode fetches
    /// through the pool's routing, breakers, and hedging instead of the
    /// single implicit origin; the top-level `server_faults` still
    /// apply to that implicit origin only, so per-origin faults go on
    /// the pool entries.
    pub origins: Option<OriginsSpec>,
    /// Optional shared segment cache in front of the origins. In fleet
    /// runs every client shares one cache built fresh per run.
    pub cache: Option<CacheSpec>,
    /// Optional epoch telemetry (`{"telemetry": {"epoch_s": 2.0}}`):
    /// every session, shared bottleneck, and fleet loop rolls its
    /// counters into fixed virtual-time epochs. Observe-only — the
    /// `exp_*` artifacts are byte-identical with or without it; the
    /// series feed `mpdash timeline`.
    pub telemetry: Option<TelemetrySpec>,
}

fn parse_shared(v: &Json) -> Result<SharedSpec, String> {
    let opt_uint =
        |key: &str| -> Result<Option<u64>, String> { v.get(key).map(|j| uint(j, key)).transpose() };
    Ok(SharedSpec {
        rate_mbps: num(field(v, "rate_mbps")?, "rate_mbps")?,
        capacity_bytes: opt_uint("capacity_bytes")?,
        discipline: match v.get("discipline") {
            None => "fifo".to_string(),
            Some(j) => string(j, "discipline")?,
        },
        quantum: opt_uint("quantum")?,
        target_delay_ms: v
            .get("target_delay_ms")
            .map(|j| num(j, "target_delay_ms"))
            .transpose()?,
        interval_ms: v
            .get("interval_ms")
            .map(|j| num(j, "interval_ms"))
            .transpose()?,
        alpha: v.get("alpha").map(|j| num(j, "alpha")).transpose()?,
        beta: v.get("beta").map(|j| num(j, "beta")).transpose()?,
        ecn: v
            .get("ecn")
            .map(|j| j.as_bool().ok_or("shared 'ecn' must be a boolean"))
            .transpose()?,
        paths: field(v, "paths")?
            .as_arr()
            .ok_or("shared 'paths' must be an array of path names")?
            .iter()
            .map(|p| string(p, "paths"))
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn parse_churn(v: Option<&Json>) -> Result<Option<ChurnSpec>, String> {
    let Some(v) = v else { return Ok(None) };
    Ok(Some(ChurnSpec {
        mean_interarrival_s: num(field(v, "mean_interarrival_s")?, "mean_interarrival_s")?,
        mean_watch_s: num(field(v, "mean_watch_s")?, "mean_watch_s")?,
        min_watch_s: v
            .get("min_watch_s")
            .map(|j| num(j, "min_watch_s"))
            .transpose()?,
    }))
}

fn parse_fault_domain(v: &Json) -> Result<FaultDomainSpec, String> {
    Ok(FaultDomainSpec {
        label: string(field(v, "label")?, "label")?,
        members: field(v, "members")?
            .as_arr()
            .ok_or("fault domain 'members' must be an array of client indices")?
            .iter()
            .map(|m| uint(m, "members").map(|u| u as usize))
            .collect::<Result<Vec<_>, _>>()?,
        wifi_faults: parse_fault_list(v.get("wifi_faults"), "wifi_faults")?,
        cell_faults: parse_fault_list(v.get("cell_faults"), "cell_faults")?,
        server_faults: parse_server_fault_list(v.get("server_faults"))?,
    })
}

fn parse_overload(v: Option<&Json>) -> Result<Option<OverloadSpec>, String> {
    let Some(v) = v else { return Ok(None) };
    Ok(Some(OverloadSpec {
        max_active: uint(field(v, "max_active")?, "max_active")? as usize,
        queue_threshold_bytes: v
            .get("queue_threshold_bytes")
            .map(|j| uint(j, "queue_threshold_bytes"))
            .transpose()?,
    }))
}

fn parse_fleet(v: Option<&Json>) -> Result<Option<FleetSpec>, String> {
    let Some(v) = v else { return Ok(None) };
    let opt_uint = |key: &str, default: u64| -> Result<u64, String> {
        match v.get(key) {
            None => Ok(default),
            Some(j) => uint(j, key),
        }
    };
    Ok(Some(FleetSpec {
        clients: uint(field(v, "clients")?, "clients")? as usize,
        stagger_s: match v.get("stagger_s") {
            None => 0.5,
            Some(j) => num(j, "stagger_s")?,
        },
        rtt_skew_ms: opt_uint("rtt_skew_ms", 0)?,
        seed: opt_uint("seed", 1)?,
        shared: match v.get("shared") {
            None => Vec::new(),
            Some(j) => j
                .as_arr()
                .ok_or("fleet 'shared' must be an array of bottleneck objects")?
                .iter()
                .map(parse_shared)
                .collect::<Result<Vec<_>, _>>()?,
        },
        churn: parse_churn(v.get("churn"))?,
        fault_domains: match v.get("fault_domains") {
            None => Vec::new(),
            Some(j) => j
                .as_arr()
                .ok_or("fleet 'fault_domains' must be an array of domain objects")?
                .iter()
                .map(parse_fault_domain)
                .collect::<Result<Vec<_>, _>>()?,
        },
        overload: parse_overload(v.get("overload"))?,
        watchdog: match v.get("watchdog") {
            None => None,
            Some(j) => Some(j.as_bool().ok_or("fleet 'watchdog' must be a boolean")?),
        },
    }))
}

/// Parse one externally-tagged fault entry — e.g.
/// `{"rate_collapse": {"at_s": 20, "secs": 40, "factor": 0.15}}` — and
/// append it to `script`. Kinds: `burst_loss`, `rtt_spike`,
/// `rate_collapse`, `disassociation`.
fn parse_fault(script: FaultScript, v: &Json) -> Result<FaultScript, String> {
    let (tag, payload) = variant(v)?;
    let at_s = num(field(payload, "at_s")?, "at_s")?;
    let secs = num(field(payload, "secs")?, "secs")?;
    if at_s.is_nan() || at_s < 0.0 {
        return Err(format!("fault 'at_s' must be >= 0, got {at_s}"));
    }
    if secs.is_nan() || secs <= 0.0 {
        return Err(format!("fault 'secs' must be > 0, got {secs}"));
    }
    let at = SimTime::ZERO + SimDuration::from_secs_f64(at_s);
    let dur = SimDuration::from_secs_f64(secs);
    let opt_num = |key: &str, default: f64| -> Result<f64, String> {
        match payload.get(key) {
            None => Ok(default),
            Some(j) => num(j, key),
        }
    };
    match tag {
        "burst_loss" => {
            let p_enter = opt_num("p_enter", 0.05)?;
            let p_exit = opt_num("p_exit", 0.30)?;
            let loss = opt_num("loss", 0.5)?;
            let prob_ok = |p: f64| p > 0.0 && p <= 1.0;
            if !prob_ok(p_enter) || !prob_ok(p_exit) {
                return Err("burst_loss 'p_enter'/'p_exit' must be in (0,1]".into());
            }
            if !(0.0..=1.0).contains(&loss) {
                return Err(format!("burst_loss 'loss' must be in [0,1], got {loss}"));
            }
            Ok(script.burst_loss(at, dur, GilbertElliott::new(p_enter, p_exit, loss)))
        }
        "rtt_spike" => {
            let extra_ms = opt_num("extra_ms", 200.0)?;
            let jitter_ms = opt_num("jitter_ms", 0.0)?;
            if extra_ms.is_nan() || extra_ms < 0.0 || jitter_ms.is_nan() || jitter_ms < 0.0 {
                return Err("rtt_spike 'extra_ms'/'jitter_ms' must be >= 0".into());
            }
            Ok(script.rtt_spike(
                at,
                dur,
                SimDuration::from_secs_f64(extra_ms / 1e3),
                SimDuration::from_secs_f64(jitter_ms / 1e3),
            ))
        }
        "rate_collapse" => {
            let factor = num(field(payload, "factor")?, "factor")?;
            if !(factor > 0.0 && factor <= 1.0) {
                return Err(format!(
                    "rate_collapse 'factor' must be in (0,1], got {factor}"
                ));
            }
            Ok(script.rate_collapse(at, dur, factor))
        }
        "disassociation" => {
            let reassoc_s = opt_num("reassoc_s", 1.0)?;
            if reassoc_s.is_nan() || reassoc_s < 0.0 {
                return Err(format!("'reassoc_s' must be >= 0, got {reassoc_s}"));
            }
            Ok(script.disassociation(at, dur, SimDuration::from_secs_f64(reassoc_s)))
        }
        other => Err(format!("unknown fault kind '{other}'")),
    }
}

/// Parse one externally-tagged server-fault entry — e.g.
/// `{"stalled_body": {"at_s": 8, "secs": 6, "stall_s": 30, "after_fraction": 0.5}}`
/// — and append it to `script`. Kinds: `error_burst`, `stalled_body`,
/// `slow_first_byte`, `blackhole`.
fn parse_server_fault(script: ServerFaultScript, v: &Json) -> Result<ServerFaultScript, String> {
    let (tag, payload) = variant(v)?;
    let at_s = num(field(payload, "at_s")?, "at_s")?;
    let secs = num(field(payload, "secs")?, "secs")?;
    if at_s.is_nan() || at_s < 0.0 {
        return Err(format!("server fault 'at_s' must be >= 0, got {at_s}"));
    }
    if secs.is_nan() || secs <= 0.0 {
        return Err(format!("server fault 'secs' must be > 0, got {secs}"));
    }
    let at = SimTime::ZERO + SimDuration::from_secs_f64(at_s);
    let dur = SimDuration::from_secs_f64(secs);
    match tag {
        "error_burst" => Ok(script.error_burst(at, dur)),
        "blackhole" => Ok(script.blackhole(at, dur)),
        "stalled_body" => {
            let stall_s = num(field(payload, "stall_s")?, "stall_s")?;
            if stall_s.is_nan() || stall_s <= 0.0 {
                return Err(format!("stalled_body 'stall_s' must be > 0, got {stall_s}"));
            }
            let frac = match payload.get("after_fraction") {
                None => 0.5,
                Some(j) => num(j, "after_fraction")?,
            };
            if !(0.0..1.0).contains(&frac) {
                return Err(format!(
                    "stalled_body 'after_fraction' must be in [0,1), got {frac}"
                ));
            }
            Ok(script.stalled_body(at, dur, SimDuration::from_secs_f64(stall_s), frac))
        }
        "slow_first_byte" => {
            let delay_s = num(field(payload, "delay_s")?, "delay_s")?;
            if delay_s.is_nan() || delay_s <= 0.0 {
                return Err(format!(
                    "slow_first_byte 'delay_s' must be > 0, got {delay_s}"
                ));
            }
            Ok(script.slow_first_byte(at, dur, SimDuration::from_secs_f64(delay_s)))
        }
        other => Err(format!("unknown server fault kind '{other}'")),
    }
}

fn parse_server_fault_list(v: Option<&Json>) -> Result<ServerFaultScript, String> {
    match v {
        None => Ok(ServerFaultScript::new()),
        Some(j) => j
            .as_arr()
            .ok_or("'server_faults' must be an array of fault objects")?
            .iter()
            .try_fold(ServerFaultScript::new(), parse_server_fault),
    }
}

fn parse_origins(v: Option<&Json>) -> Result<Option<OriginsSpec>, String> {
    let Some(v) = v else { return Ok(None) };
    let pool = field(v, "pool")?
        .as_arr()
        .ok_or("'origins.pool' must be an array of origin objects")?
        .iter()
        .map(|o| {
            Ok(OriginEntrySpec {
                id: string(field(o, "id")?, "id")?,
                rtt_penalty_ms: match o.get("rtt_penalty_ms") {
                    None => 0,
                    Some(j) => uint(j, "rtt_penalty_ms")?,
                },
                faults: parse_server_fault_list(o.get("faults"))?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(Some(OriginsSpec {
        pool,
        hedge_quantile: v
            .get("hedge_quantile")
            .map(|j| num(j, "hedge_quantile"))
            .transpose()?,
        failure_threshold: v
            .get("failure_threshold")
            .map(|j| uint(j, "failure_threshold"))
            .transpose()?,
    }))
}

fn parse_cache(v: Option<&Json>) -> Result<Option<CacheSpec>, String> {
    let Some(v) = v else { return Ok(None) };
    Ok(Some(CacheSpec {
        capacity_mb: num(field(v, "capacity_mb")?, "capacity_mb")?,
        edge_delay_ms: match v.get("edge_delay_ms") {
            None => 5,
            Some(j) => uint(j, "edge_delay_ms")?,
        },
    }))
}

fn parse_telemetry(v: Option<&Json>) -> Result<Option<TelemetrySpec>, String> {
    let Some(v) = v else { return Ok(None) };
    let epoch_s = num(field(v, "epoch_s")?, "epoch_s")?;
    if !epoch_s.is_finite() || epoch_s <= 0.0 {
        return Err(format!(
            "telemetry 'epoch_s' must be a positive number, got {epoch_s}"
        ));
    }
    Ok(Some(TelemetrySpec::seconds(epoch_s)))
}

fn parse_lifecycle(v: Option<&Json>) -> Result<LifecyclePolicy, String> {
    match v {
        None => Ok(LifecyclePolicy::wait_forever()),
        Some(j) => match j.as_str() {
            Some("wait_forever") => Ok(LifecyclePolicy::wait_forever()),
            Some("retry_only") => Ok(LifecyclePolicy::retry_only()),
            Some("deadline_aware") => Ok(LifecyclePolicy::deadline_aware()),
            Some(other) => Err(format!(
                "unknown lifecycle '{other}' (expected wait_forever, retry_only, \
                 or deadline_aware)"
            )),
            None => Err("'lifecycle' must be a string".into()),
        },
    }
}

fn parse_fault_list(v: Option<&Json>, key: &str) -> Result<FaultScript, String> {
    match v {
        None => Ok(FaultScript::new()),
        Some(j) => j
            .as_arr()
            .ok_or_else(|| format!("'{key}' must be an array of fault objects"))?
            .iter()
            .try_fold(FaultScript::new(), parse_fault),
    }
}

// The documents use serde-style externally-tagged enums in snake_case: a
// bare string is a unit variant ("vanilla"), a single-key object wraps a
// payload variant ({"throttled": 700}). The helpers below keep that exact
// format so existing scenario files parse unchanged.

/// For a single-key object, the `(key, payload)` pair.
fn variant(v: &Json) -> Result<(&str, &Json), String> {
    match v.as_obj() {
        Some([(key, payload)]) => Ok((key.as_str(), payload)),
        _ => Err("expected a single-variant object".into()),
    }
}

fn num(v: &Json, what: &str) -> Result<f64, String> {
    v.as_f64()
        .ok_or_else(|| format!("'{what}' must be a number"))
}

fn uint(v: &Json, what: &str) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("'{what}' must be a non-negative integer"))
}

fn string(v: &Json, what: &str) -> Result<String, String> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("'{what}' must be a string"))
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.req(key).map_err(|e| e.to_string())
}

impl BandwidthSpec {
    fn parse(v: &Json) -> Result<Self, String> {
        let (tag, payload) = variant(v)?;
        match tag {
            "constant" => Ok(BandwidthSpec::Constant(num(payload, "constant")?)),
            "synthetic" => Ok(BandwidthSpec::Synthetic {
                mean_mbps: num(field(payload, "mean_mbps")?, "mean_mbps")?,
                sigma: num(field(payload, "sigma")?, "sigma")?,
                seed: uint(field(payload, "seed")?, "seed")?,
            }),
            "file" => Ok(BandwidthSpec::File(string(payload, "file")?)),
            other => Err(format!("unknown bandwidth kind '{other}'")),
        }
    }
}

impl VideoSpec {
    fn parse(v: &Json) -> Result<Self, String> {
        let (tag, payload) = variant(v)?;
        match tag {
            "named" => Ok(VideoSpec::Named(string(payload, "named")?)),
            "custom" => Ok(VideoSpec::Custom {
                levels_mbps: field(payload, "levels_mbps")?
                    .as_arr()
                    .ok_or("'levels_mbps' must be an array")?
                    .iter()
                    .map(|l| num(l, "levels_mbps"))
                    .collect::<Result<Vec<_>, _>>()?,
                chunk_secs: uint(field(payload, "chunk_secs")?, "chunk_secs")?,
                n_chunks: uint(field(payload, "n_chunks")?, "n_chunks")? as usize,
            }),
            other => Err(format!("unknown video kind '{other}'")),
        }
    }
}

impl ModeKind {
    fn parse(v: &Json) -> Result<Self, String> {
        if let Some(tag) = v.as_str() {
            return match tag {
                "vanilla" => Ok(ModeKind::Vanilla),
                "wifi_only" => Ok(ModeKind::WifiOnly),
                "mpdash_rate" => Ok(ModeKind::MpdashRate),
                "mpdash_duration" => Ok(ModeKind::MpdashDuration),
                other => Err(format!("unknown mode '{other}'")),
            };
        }
        let (tag, payload) = variant(v)?;
        match tag {
            "throttled" => Ok(ModeKind::Throttled(uint(payload, "throttled")?)),
            other => Err(format!("unknown mode '{other}'")),
        }
    }
}

impl ModeSpec {
    fn parse(v: &Json) -> Result<Self, String> {
        // The long form `{"mode": ..., "scheduler": "..."}` wraps any
        // short-form mode with a packet-scheduler override; the short
        // forms ("vanilla", {"throttled": 700}) stay valid unchanged.
        if let Some(mode) = v.get("mode") {
            let scheduler = match v.get("scheduler") {
                None => None,
                Some(j) => {
                    let name = string(j, "scheduler")?;
                    Some(SchedulerSpec::parse(&name).ok_or_else(|| {
                        format!(
                            "unknown scheduler '{name}' (expected min_rtt, \
                             round_robin, or qaware)"
                        )
                    })?)
                }
            };
            return Ok(ModeSpec {
                kind: ModeKind::parse(mode)?,
                scheduler,
            });
        }
        Ok(ModeSpec {
            kind: ModeKind::parse(v)?,
            scheduler: None,
        })
    }
}

impl Scenario {
    /// Parse a scenario document.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let opt_uint = |key: &str, default: u64| -> Result<u64, String> {
            match v.get(key) {
                None => Ok(default),
                Some(j) => uint(j, key),
            }
        };
        let sc = Scenario {
            name: string(field(&v, "name")?, "name")?,
            video: VideoSpec::parse(field(&v, "video")?)?,
            wifi: BandwidthSpec::parse(field(&v, "wifi")?)?,
            cell: BandwidthSpec::parse(field(&v, "cell")?)?,
            wifi_rtt_ms: opt_uint("wifi_rtt_ms", 50)?,
            cell_rtt_ms: opt_uint("cell_rtt_ms", 55)?,
            abr: string(field(&v, "abr")?, "abr")?,
            buffer_secs: opt_uint("buffer_secs", 40)?,
            modes: field(&v, "modes")?
                .as_arr()
                .ok_or("'modes' must be an array")?
                .iter()
                .map(ModeSpec::parse)
                .collect::<Result<Vec<_>, _>>()?,
            wifi_faults: parse_fault_list(v.get("wifi_faults"), "wifi_faults")?,
            cell_faults: parse_fault_list(v.get("cell_faults"), "cell_faults")?,
            server_faults: parse_server_fault_list(v.get("server_faults"))?,
            lifecycle: parse_lifecycle(v.get("lifecycle"))?,
            fleet: parse_fleet(v.get("fleet"))?,
            origins: parse_origins(v.get("origins"))?,
            cache: parse_cache(v.get("cache"))?,
            telemetry: parse_telemetry(v.get("telemetry"))?,
        };
        sc.validate()?;
        Ok(sc)
    }

    /// Reject structurally-valid documents whose values would wedge or
    /// panic deep inside the simulator, with a message naming the field.
    fn validate(&self) -> Result<(), String> {
        if self.wifi_rtt_ms == 0 {
            return Err("'wifi_rtt_ms' must be > 0".into());
        }
        if self.cell_rtt_ms == 0 {
            return Err("'cell_rtt_ms' must be > 0".into());
        }
        if self.buffer_secs == 0 {
            return Err("'buffer_secs' must be > 0 (the player needs a buffer)".into());
        }
        if self.modes.is_empty() {
            return Err("'modes' must list at least one transport policy".into());
        }
        for mode in &self.modes {
            if let ModeKind::Throttled(0) = mode.kind {
                return Err("throttled mode needs a rate > 0 kbps (use a zero-rate \
                     'cell' bandwidth for a dead path instead)"
                    .into());
            }
        }
        if let Some(fleet) = &self.fleet {
            if fleet.clients == 0 {
                return Err("'clients' must be > 0".into());
            }
            if fleet.stagger_s.is_nan() || fleet.stagger_s < 0.0 {
                return Err(format!("'stagger_s' must be >= 0, got {}", fleet.stagger_s));
            }
            if let Some(churn) = &fleet.churn {
                let positive = |what: &str, v: f64| -> Result<(), String> {
                    if v.is_finite() && v > 0.0 {
                        Ok(())
                    } else {
                        Err(format!("'churn.{what}' must be a positive number, got {v}"))
                    }
                };
                positive("mean_interarrival_s", churn.mean_interarrival_s)?;
                positive("mean_watch_s", churn.mean_watch_s)?;
                if let Some(floor) = churn.min_watch_s {
                    if !(floor.is_finite() && floor >= 0.0) {
                        return Err(format!("'churn.min_watch_s' must be >= 0, got {floor}"));
                    }
                }
            }
            for domain in &fleet.fault_domains {
                if domain.members.is_empty() {
                    return Err(format!(
                        "fault domain '{}' needs at least one member index",
                        domain.label
                    ));
                }
                for (i, &m) in domain.members.iter().enumerate() {
                    if m >= fleet.clients {
                        return Err(format!(
                            "fault domain '{}' member {m} is out of range (the fleet \
                             has {} clients, indices 0..{})",
                            domain.label,
                            fleet.clients,
                            fleet.clients - 1
                        ));
                    }
                    if domain.members[..i].contains(&m) {
                        return Err(format!(
                            "fault domain '{}' lists member {m} twice (its scripts \
                             would compose onto the client once per listing)",
                            domain.label
                        ));
                    }
                }
                if domain.wifi_faults.is_empty()
                    && domain.cell_faults.is_empty()
                    && domain.server_faults.is_empty()
                {
                    return Err(format!(
                        "fault domain '{}' has no fault scripts (add wifi_faults, \
                         cell_faults, or server_faults — or drop the domain)",
                        domain.label
                    ));
                }
            }
            if let Some(overload) = &fleet.overload {
                if overload.max_active == 0 {
                    return Err("'overload.max_active' must be > 0 (a zero cap sheds \
                         every session; drop the 'overload' key to admit everyone)"
                        .into());
                }
                if overload.queue_threshold_bytes == Some(0) {
                    return Err("'overload.queue_threshold_bytes' must be > 0".into());
                }
            }
            for shared in &fleet.shared {
                if shared.rate_mbps.is_nan() || shared.rate_mbps <= 0.0 {
                    return Err(format!(
                        "shared 'rate_mbps' must be > 0, got {}",
                        shared.rate_mbps
                    ));
                }
                if shared.capacity_bytes == Some(0) {
                    return Err("shared 'capacity_bytes' must be > 0 (a zero-length \
                         queue drops every packet and the fleet never finishes)"
                        .into());
                }
                if shared.quantum == Some(0) {
                    return Err("shared 'quantum' must be > 0".into());
                }
                match shared.discipline.as_str() {
                    "fifo" | "fq" | "pie" | "fq_pie" | "codel" => {}
                    other => {
                        return Err(format!(
                            "unknown discipline '{other}' (expected fifo, fq, pie, \
                             fq_pie, or codel)"
                        ))
                    }
                }
                let is_aqm = matches!(shared.discipline.as_str(), "pie" | "fq_pie" | "codel");
                if !is_aqm {
                    for (key, set) in [
                        ("target_delay_ms", shared.target_delay_ms.is_some()),
                        ("interval_ms", shared.interval_ms.is_some()),
                        ("alpha", shared.alpha.is_some()),
                        ("beta", shared.beta.is_some()),
                        ("ecn", shared.ecn.is_some()),
                    ] {
                        if set {
                            return Err(format!(
                                "shared '{key}' only applies to an AQM discipline \
                                 (pie, fq_pie, or codel), not '{}'",
                                shared.discipline
                            ));
                        }
                    }
                }
                for (key, val) in [
                    ("target_delay_ms", shared.target_delay_ms),
                    ("interval_ms", shared.interval_ms),
                ] {
                    if let Some(v) = val {
                        if v.is_nan() || v <= 0.0 {
                            return Err(format!("shared '{key}' must be > 0, got {v}"));
                        }
                    }
                }
                for (key, val) in [("alpha", shared.alpha), ("beta", shared.beta)] {
                    if let Some(v) = val {
                        if !(v.is_finite() && v >= 0.0) {
                            return Err(format!("shared '{key}' must be >= 0, got {v}"));
                        }
                    }
                }
                if shared.discipline == "codel" && (shared.alpha.is_some() || shared.beta.is_some())
                {
                    return Err(
                        "'alpha'/'beta' are PIE gains; codel only takes 'target_delay_ms', \
                         'interval_ms', and 'ecn'"
                            .into(),
                    );
                }
                if shared.quantum.is_some()
                    && !matches!(shared.discipline.as_str(), "fq" | "fq_pie")
                {
                    return Err(format!(
                        "shared 'quantum' only applies to the per-flow disciplines \
                         (fq or fq_pie), not '{}'",
                        shared.discipline
                    ));
                }
                if shared.paths.is_empty() {
                    return Err("a shared link needs at least one subscribing path \
                         ('wifi' or 'cell')"
                        .into());
                }
                for p in &shared.paths {
                    if p != "wifi" && p != "cell" {
                        return Err(format!("unknown path '{p}' (expected wifi or cell)"));
                    }
                }
            }
        }
        if let Some(origins) = &self.origins {
            if origins.pool.is_empty() {
                return Err("'origins.pool' must list at least one origin \
                     (drop the 'origins' key for the implicit single origin)"
                    .into());
            }
            for (i, a) in origins.pool.iter().enumerate() {
                if origins.pool[..i].iter().any(|b| b.id == a.id) {
                    return Err(format!(
                        "duplicate origin id '{}' (pool ids must be unique so \
                         explain/trace attribution stays unambiguous)",
                        a.id
                    ));
                }
            }
            if let Some(q) = origins.hedge_quantile {
                if !(q > 0.0 && q <= 1.0) {
                    return Err(format!(
                        "'hedge_quantile' must be in (0,1] (0 would hedge \
                         instantly, >1 can never fire before the deadline), got {q}"
                    ));
                }
            }
            if origins.failure_threshold == Some(0) {
                return Err("'failure_threshold' must be > 0 (a zero threshold \
                     would trip every breaker on sight)"
                    .into());
            }
        }
        if let Some(cache) = &self.cache {
            if cache.capacity_mb.is_nan() || cache.capacity_mb <= 0.0 {
                return Err(format!(
                    "'capacity_mb' must be > 0 (drop the 'cache' key to run \
                     uncached), got {}",
                    cache.capacity_mb
                ));
            }
        }
        Ok(())
    }

    fn abr_kind(&self) -> Result<AbrKind, String> {
        match self.abr.as_str() {
            "gpac" => Ok(AbrKind::Gpac),
            "festive" => Ok(AbrKind::Festive),
            "bba" => Ok(AbrKind::Bba),
            "bba_c" | "bbac" | "bba-c" => Ok(AbrKind::BbaC),
            "mpc" => Ok(AbrKind::Mpc),
            other => Err(format!("unknown abr '{other}'")),
        }
    }

    /// Build the session configs, one per mode, in declaration order.
    pub fn build(&self) -> Result<Vec<(String, SessionConfig)>, String> {
        let video = self.video.build()?;
        let abr = self.abr_kind()?;
        let wifi_profile = self.wifi.build()?;
        let cell_profile = self.cell.build()?;
        let priors = (self.wifi.mean(&wifi_profile), self.cell.mean(&cell_profile));
        let mut out = Vec::new();
        for mode in &self.modes {
            // Half-RTT in microseconds, so odd RTTs (the testbed's 55 ms
            // LTE) survive the halving exactly.
            let wifi = LinkConfig::constant(1.0, SimDuration::from_micros(self.wifi_rtt_ms * 500))
                .with_profile(wifi_profile.clone());
            let cell = LinkConfig::constant(1.0, SimDuration::from_micros(self.cell_rtt_ms * 500))
                .with_profile(cell_profile.clone());
            let mut cfg = SessionConfig::controlled(
                (wifi_profile.clone(), cell_profile.clone()),
                abr,
                mode.build(),
            )
            .with_video(video.clone());
            cfg.wifi = wifi;
            cfg.cell = cell;
            cfg.buffer_capacity = SimDuration::from_secs(self.buffer_secs);
            cfg.priors = priors;
            if !self.wifi_faults.is_empty() {
                cfg = cfg.with_wifi_faults(self.wifi_faults.clone());
            }
            if !self.cell_faults.is_empty() {
                cfg = cfg.with_cell_faults(self.cell_faults.clone());
            }
            if !self.server_faults.is_empty() {
                cfg = cfg.with_server_faults(self.server_faults.clone());
            }
            cfg = cfg.with_lifecycle(self.lifecycle);
            if let Some(origins) = &self.origins {
                cfg = cfg.with_origins(origins.build());
            }
            if let Some(cache) = &self.cache {
                // A fresh cache per mode: compared policies must not
                // warm each other's working set.
                cfg = cfg.with_cache(
                    mpdash_session::SharedSegmentCache::new(cache.capacity_bytes())
                        .with_edge_delay(cache.edge_delay()),
                );
            }
            if let Some(sched) = mode.scheduler {
                cfg = cfg.with_scheduler(sched);
            }
            if let Some(t) = self.telemetry {
                cfg = cfg.with_telemetry(t);
            }
            out.push((mode.label(), cfg));
        }
        Ok(out)
    }

    /// The scenario as a batch-runner job list (one job per mode, in
    /// declaration order) — feed straight into
    /// [`mpdash_session::run_batch`].
    pub fn jobs(&self) -> Result<Vec<Job>, String> {
        Ok(self
            .build()?
            .into_iter()
            .map(|(label, cfg)| Job::session(label, cfg))
            .collect())
    }

    /// Wrap one built mode config in the document's fleet topology.
    /// Errors when the document has no `fleet` key.
    pub fn fleet_config(&self, mut base: SessionConfig) -> Result<FleetConfig, String> {
        let Some(fleet) = &self.fleet else {
            return Err("scenario has no 'fleet' key".into());
        };
        // In a fleet the cache is per *run*, not per mode config: hand
        // the fleet the spec and drop the session-level handle, so two
        // runs of the same FleetConfig never share warm state.
        let cache = self.cache.as_ref().map(|c| {
            base.cache = None;
            FleetCacheSpec::new(c.capacity_bytes()).with_edge_delay(c.edge_delay())
        });
        let mut fc = FleetConfig::new(base, fleet.clients)
            .with_stagger(SimDuration::from_secs_f64(fleet.stagger_s))
            .with_rtt_skew(SimDuration::from_millis(fleet.rtt_skew_ms))
            .with_seed(fleet.seed);
        if let Some(cache) = cache {
            fc = fc.with_cache(cache);
        }
        for shared in &fleet.shared {
            fc = fc.with_shared(shared.build());
        }
        if let Some(churn) = &fleet.churn {
            fc = fc.with_churn(churn.build());
        }
        for domain in &fleet.fault_domains {
            fc = fc.with_fault_domain(domain.build());
        }
        if let Some(overload) = &fleet.overload {
            fc = fc.with_overload(overload.build());
        }
        if let Some(watchdog) = fleet.watchdog {
            fc = fc.with_watchdog(watchdog);
        }
        Ok(fc)
    }

    /// Build the fleet configs, one per mode, in declaration order.
    pub fn fleet_configs(&self) -> Result<Vec<(String, FleetConfig)>, String> {
        self.build()?
            .into_iter()
            .map(|(label, cfg)| Ok((label, self.fleet_config(cfg)?)))
            .collect()
    }

    /// The fleet scenario as a batch-runner job list (one fleet replica
    /// per mode); each job returns the replica's summary JSON.
    pub fn fleet_jobs(&self) -> Result<Vec<Job>, String> {
        Ok(self
            .fleet_configs()?
            .into_iter()
            .map(|(label, fc)| fleet_job(label, fc))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
        "name": "demo",
        "video": {"named": "big_buck_bunny"},
        "wifi": {"synthetic": {"mean_mbps": 3.8, "sigma": 0.1, "seed": 42}},
        "cell": {"constant": 3.0},
        "abr": "festive",
        "modes": ["vanilla", "mpdash_rate", {"throttled": 700}]
    }"#;

    #[test]
    fn parses_and_builds() {
        let sc = Scenario::from_json(DOC).unwrap();
        assert_eq!(sc.name, "demo");
        assert_eq!(sc.wifi_rtt_ms, 50, "default applied");
        let configs = sc.build().unwrap();
        assert_eq!(configs.len(), 3);
        assert_eq!(configs[0].0, "Baseline");
        assert_eq!(configs[1].0, "Rate");
        assert_eq!(configs[2].0, "Throttle700k");
        assert_eq!(configs[0].1.video.n_chunks(), 150);
        // Priors track the declared bandwidths.
        assert!((configs[0].1.priors.0.as_mbps_f64() - 3.8).abs() < 0.4);
    }

    #[test]
    fn rejects_unknown_names() {
        let bad = DOC.replace("festive", "quantum");
        let sc = Scenario::from_json(&bad).unwrap();
        assert!(sc.build().unwrap_err().contains("unknown abr"));

        let bad = DOC.replace("big_buck_bunny", "rickroll");
        let sc = Scenario::from_json(&bad).unwrap();
        assert!(sc.build().unwrap_err().contains("unknown video"));
    }

    #[test]
    fn rejects_values_that_would_wedge_the_simulator() {
        for (patch, expect) in [
            (r#""wifi_rtt_ms": 0,"#, "'wifi_rtt_ms' must be > 0"),
            (r#""buffer_secs": 0,"#, "'buffer_secs' must be > 0"),
        ] {
            let doc = DOC.replacen(r#""name":"#, &format!("{patch} \"name\":"), 1);
            let err = Scenario::from_json(&doc).unwrap_err();
            assert!(err.contains(expect), "{patch}: {err}");
        }

        let doc = DOC.replace(r#"["vanilla", "mpdash_rate", {"throttled": 700}]"#, "[]");
        let err = Scenario::from_json(&doc).unwrap_err();
        assert!(err.contains("at least one transport policy"), "{err}");

        let doc = DOC.replace(r#"{"throttled": 700}"#, r#"{"throttled": 0}"#);
        let err = Scenario::from_json(&doc).unwrap_err();
        assert!(err.contains("rate > 0 kbps"), "{err}");

        let doc = DOC.replace(r#"{"constant": 3.0}"#, r#"{"constant": -1.0}"#);
        let sc = Scenario::from_json(&doc).unwrap();
        let err = sc.build().unwrap_err();
        assert!(err.contains(">= 0 Mbps"), "{err}");

        let doc = DOC.replace(r#""mean_mbps": 3.8"#, r#""mean_mbps": 0.0"#);
        let sc = Scenario::from_json(&doc).unwrap();
        let err = sc.build().unwrap_err();
        assert!(err.contains("'mean_mbps' must be > 0"), "{err}");
    }

    #[test]
    fn per_mode_scheduler_key_parses_and_applies() {
        let doc = DOC.replace(
            r#"["vanilla", "mpdash_rate", {"throttled": 700}]"#,
            r#"["vanilla",
               {"mode": "mpdash_rate", "scheduler": "qaware"},
               {"mode": {"throttled": 700}, "scheduler": "round_robin"},
               {"mode": "vanilla"}]"#,
        );
        let sc = Scenario::from_json(&doc).unwrap();
        assert_eq!(sc.modes[0].scheduler, None);
        assert_eq!(sc.modes[1].scheduler, Some(SchedulerSpec::QAware));
        assert_eq!(sc.modes[2].scheduler, Some(SchedulerSpec::RoundRobin));
        assert_eq!(sc.modes[3].scheduler, None, "long form without the key");
        let configs = sc.build().unwrap();
        assert_eq!(configs[0].1.scheduler, SchedulerSpec::MinRtt, "default");
        assert_eq!(configs[1].1.scheduler, SchedulerSpec::QAware);
        assert_eq!(configs[2].1.scheduler, SchedulerSpec::RoundRobin);
        // Labels stay distinguishable per grid row.
        assert_eq!(configs[0].0, "Baseline");
        assert_eq!(configs[1].0, "Rate+qaware");
        assert_eq!(configs[2].0, "Throttle700k+round_robin");
        assert_eq!(configs[3].0, "Baseline");
    }

    #[test]
    fn rejects_an_unknown_scheduler_name() {
        let doc = DOC.replace(
            r#""mpdash_rate""#,
            r#"{"mode": "mpdash_rate", "scheduler": "lowest_latency_first"}"#,
        );
        let err = Scenario::from_json(&doc).unwrap_err();
        assert!(
            err.contains("unknown scheduler 'lowest_latency_first'")
                && err.contains("min_rtt, round_robin, or qaware"),
            "{err}"
        );

        let doc = DOC.replace(
            r#""mpdash_rate""#,
            r#"{"mode": "mpdash_rate", "scheduler": 3}"#,
        );
        let err = Scenario::from_json(&doc).unwrap_err();
        assert!(err.contains("'scheduler' must be a string"), "{err}");
    }

    #[test]
    fn rejects_a_descending_bitrate_ladder() {
        let doc = r#"{
            "name": "bad-ladder",
            "video": {"custom": {"levels_mbps": [2.0, 1.0], "chunk_secs": 2, "n_chunks": 10}},
            "wifi": {"constant": 5.0},
            "cell": {"constant": 3.0},
            "abr": "gpac",
            "modes": ["vanilla"]
        }"#;
        let sc = Scenario::from_json(doc).unwrap();
        let err = sc.build().unwrap_err();
        assert!(err.contains("strictly ascending"), "{err}");
    }

    #[test]
    fn parses_fault_arrays_onto_links() {
        let doc = DOC.replacen(
            r#""name":"#,
            r#""wifi_faults": [
                {"rate_collapse": {"at_s": 20, "secs": 40, "factor": 0.15}},
                {"disassociation": {"at_s": 90, "secs": 10, "reassoc_s": 2}}
            ],
            "cell_faults": [
                {"rtt_spike": {"at_s": 5, "secs": 10, "extra_ms": 300, "jitter_ms": 50}}
            ],
            "name":"#,
            1,
        );
        let sc = Scenario::from_json(&doc).unwrap();
        assert_eq!(sc.wifi_faults.events().len(), 2);
        assert_eq!(sc.cell_faults.events().len(), 1);
        assert_eq!(sc.wifi_faults.events()[0].kind.name(), "rate_collapse");
        // The disassociation window includes the reassociation tail.
        assert_eq!(sc.wifi_faults.events()[1].end(), SimTime::from_secs(102));
        let configs = sc.build().unwrap();
        let cfg = &configs[0].1;
        assert_eq!(
            cfg.wifi.faults.as_ref().map(|s| s.events().len()),
            Some(2),
            "faults land on the built WiFi link"
        );
        assert_eq!(cfg.cell.faults.as_ref().map(|s| s.events().len()), Some(1));
    }

    #[test]
    fn parses_server_faults_and_lifecycle() {
        let doc = DOC.replacen(
            r#""name":"#,
            r#""server_faults": [
                {"error_burst": {"at_s": 10, "secs": 3}},
                {"stalled_body": {"at_s": 8, "secs": 6, "stall_s": 30, "after_fraction": 0.5}},
                {"slow_first_byte": {"at_s": 12, "secs": 6, "delay_s": 1}}
            ],
            "lifecycle": "deadline_aware",
            "name":"#,
            1,
        );
        let sc = Scenario::from_json(&doc).unwrap();
        assert_eq!(sc.server_faults.events().len(), 3);
        // Events are sorted by activation time.
        assert_eq!(sc.server_faults.events()[0].kind.name(), "stalled_body");
        assert!(sc.lifecycle.abandon_resume);
        let configs = sc.build().unwrap();
        assert_eq!(configs[0].1.server_faults.events().len(), 3);
        assert!(configs[0].1.lifecycle.abandon_resume);
        // Absent keys keep the passive defaults.
        let sc = Scenario::from_json(DOC).unwrap();
        assert!(sc.server_faults.is_empty());
        assert!(sc.lifecycle.is_passive());
    }

    #[test]
    fn rejects_bad_server_fault_values() {
        for (faults, expect) in [
            (
                r#"[{"error_burst": {"at_s": -1, "secs": 3}}]"#,
                "'at_s' must be >= 0",
            ),
            (
                r#"[{"error_burst": {"at_s": 1, "secs": 0}}]"#,
                "'secs' must be > 0",
            ),
            (
                r#"[{"stalled_body": {"at_s": 1, "secs": 3, "stall_s": 5, "after_fraction": 1.0}}]"#,
                "'after_fraction' must be in [0,1)",
            ),
            (
                r#"[{"stalled_body": {"at_s": 1, "secs": 3, "stall_s": 0}}]"#,
                "'stall_s' must be > 0",
            ),
            (
                r#"[{"slow_first_byte": {"at_s": 1, "secs": 3, "delay_s": 0}}]"#,
                "'delay_s' must be > 0",
            ),
            (
                r#"[{"ransomware": {"at_s": 1, "secs": 3}}]"#,
                "unknown server fault kind",
            ),
        ] {
            let doc = DOC.replacen(
                r#""name":"#,
                &format!(r#""server_faults": {faults}, "name":"#),
                1,
            );
            let err = Scenario::from_json(&doc).unwrap_err();
            assert!(err.contains(expect), "{faults}: {err}");
        }

        let doc = DOC.replacen(r#""name":"#, r#""lifecycle": "yolo", "name":"#, 1);
        let err = Scenario::from_json(&doc).unwrap_err();
        assert!(err.contains("unknown lifecycle"), "{err}");
    }

    #[test]
    fn shipped_server_faults_scenario_parses() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/server_faults.json");
        let text = std::fs::read_to_string(path).unwrap();
        let sc = Scenario::from_json(&text).unwrap();
        assert!(!sc.server_faults.is_empty());
        assert!(sc.lifecycle.abandon_resume);
        assert!(sc.build().is_ok());
    }

    #[test]
    fn rejects_bad_fault_values() {
        for (faults, expect) in [
            (
                r#"[{"rate_collapse": {"at_s": 5, "secs": 10, "factor": 0.0}}]"#,
                "'factor' must be in (0,1]",
            ),
            (
                r#"[{"rate_collapse": {"at_s": 5, "secs": 0, "factor": 0.5}}]"#,
                "'secs' must be > 0",
            ),
            (
                r#"[{"burst_loss": {"at_s": 5, "secs": 10, "p_enter": 2.0}}]"#,
                "must be in (0,1]",
            ),
            (
                r#"[{"meteor_strike": {"at_s": 5, "secs": 10}}]"#,
                "unknown fault kind",
            ),
        ] {
            let doc = DOC.replacen(
                r#""name":"#,
                &format!(r#""wifi_faults": {faults}, "name":"#),
                1,
            );
            let err = Scenario::from_json(&doc).unwrap_err();
            assert!(err.contains(expect), "{faults}: {err}");
        }
    }

    const FLEET_PATCH: &str = r#""fleet": {
        "clients": 4,
        "stagger_s": 1.0,
        "rtt_skew_ms": 10,
        "seed": 7,
        "shared": [
            {"rate_mbps": 10.0, "discipline": "fq", "quantum": 1540, "paths": ["wifi"]},
            {"rate_mbps": 3.0, "discipline": "fifo", "paths": ["cell"]}
        ]
    },"#;

    fn fleet_doc(patch: &str) -> String {
        DOC.replacen(r#""name":"#, &format!("{patch} \"name\":"), 1)
    }

    #[test]
    fn parses_a_fleet_topology() {
        let sc = Scenario::from_json(&fleet_doc(FLEET_PATCH)).unwrap();
        let fleet = sc.fleet.as_ref().unwrap();
        assert_eq!(fleet.clients, 4);
        assert_eq!(fleet.shared.len(), 2);
        let configs = sc.fleet_configs().unwrap();
        assert_eq!(configs.len(), 3, "one fleet per mode");
        let fc = &configs[0].1;
        assert_eq!(fc.clients, 4);
        assert_eq!(fc.stagger, SimDuration::from_secs(1));
        assert_eq!(fc.rtt_skew, SimDuration::from_millis(10));
        assert_eq!(fc.seed, 7);
        assert_eq!(fc.shared[0].paths, vec![mpdash_link::PathId::WIFI]);
        assert_eq!(fc.shared[1].paths, vec![mpdash_link::PathId::CELLULAR]);
        assert_eq!(sc.fleet_jobs().unwrap().len(), 3);
        // Documents without the key build no fleet.
        let plain = Scenario::from_json(DOC).unwrap();
        assert!(plain.fleet.is_none());
        assert!(plain
            .fleet_configs()
            .unwrap_err()
            .contains("no 'fleet' key"));
    }

    #[test]
    fn parses_aqm_disciplines_with_knobs() {
        let patch = r#""fleet": {
            "clients": 4,
            "seed": 7,
            "shared": [
                {"rate_mbps": 10.0, "discipline": "pie", "target_delay_ms": 20.0,
                 "interval_ms": 30.0, "alpha": 0.25, "beta": 2.5, "ecn": true,
                 "paths": ["wifi"]},
                {"rate_mbps": 8.0, "discipline": "fq_pie", "quantum": 3080, "paths": ["wifi"]},
                {"rate_mbps": 3.0, "discipline": "codel", "target_delay_ms": 5.0,
                 "interval_ms": 100.0, "paths": ["cell"]}
            ]
        },"#;
        let sc = Scenario::from_json(&fleet_doc(patch)).unwrap();
        let fc = &sc.fleet_configs().unwrap()[0].1;
        match fc.shared[0].config.discipline {
            QueueDiscipline::Pie(a) => {
                assert_eq!(a.target_ns, 20_000_000);
                assert_eq!(a.interval_ns, 30_000_000);
                assert_eq!(
                    a,
                    AqmConfig::pie()
                        .with_target_ms(20.0)
                        .with_interval_ms(30.0)
                        .with_alpha(0.25)
                        .with_beta(2.5)
                        .with_ecn(true)
                );
            }
            ref d => panic!("expected pie, got {d:?}"),
        }
        match fc.shared[1].config.discipline {
            QueueDiscipline::FqPie { quantum, aqm } => {
                assert_eq!(quantum, 3080);
                assert_eq!(aqm, AqmConfig::pie(), "fq_pie defaults to PIE's knobs");
            }
            ref d => panic!("expected fq_pie, got {d:?}"),
        }
        match fc.shared[2].config.discipline {
            QueueDiscipline::Codel(a) => assert_eq!(a, AqmConfig::codel()),
            ref d => panic!("expected codel, got {d:?}"),
        }
    }

    #[test]
    fn parses_the_telemetry_key_into_every_config() {
        let doc = fleet_doc(&format!(
            r#""telemetry": {{"epoch_s": 2.0}}, {FLEET_PATCH}"#
        ));
        let sc = Scenario::from_json(&doc).unwrap();
        let spec = sc.telemetry.expect("telemetry parsed");
        assert_eq!(spec.epoch, SimDuration::from_secs(2));
        for (_, cfg) in sc.build().unwrap() {
            assert_eq!(cfg.telemetry, Some(spec));
        }
        for (_, fc) in sc.fleet_configs().unwrap() {
            assert_eq!(fc.base.telemetry, Some(spec));
        }
        // Absent key → no telemetry; bad epoch rejected.
        assert!(Scenario::from_json(DOC).unwrap().telemetry.is_none());
        let err = Scenario::from_json(&fleet_doc(r#""telemetry": {"epoch_s": 0.0},"#)).unwrap_err();
        assert!(err.contains("'epoch_s' must be a positive number"), "{err}");
    }

    const CHURN_PATCH: &str = r#""fleet": {
        "clients": 8,
        "seed": 23,
        "watchdog": true,
        "churn": {"mean_interarrival_s": 6.0, "mean_watch_s": 30.0, "min_watch_s": 4.0},
        "fault_domains": [
            {"label": "region", "members": [0, 1, 2, 3],
             "wifi_faults": [{"disassociation": {"at_s": 30, "secs": 3, "reassoc_s": 1}}]}
        ],
        "overload": {"max_active": 4, "queue_threshold_bytes": 262144},
        "shared": [
            {"rate_mbps": 4.8, "paths": ["wifi"]},
            {"rate_mbps": 3.0, "paths": ["cell"]}
        ]
    },"#;

    #[test]
    fn parses_churn_domains_and_overload_onto_the_fleet() {
        let sc = Scenario::from_json(&fleet_doc(CHURN_PATCH)).unwrap();
        let fleet = sc.fleet.as_ref().unwrap();
        let churn = fleet.churn.as_ref().unwrap();
        assert_eq!(churn.mean_interarrival_s, 6.0);
        assert_eq!(fleet.fault_domains.len(), 1);
        assert_eq!(fleet.fault_domains[0].members, vec![0, 1, 2, 3]);
        assert_eq!(fleet.overload.as_ref().unwrap().max_active, 4);

        let configs = sc.fleet_configs().unwrap();
        let fc = &configs[0].1;
        let built = fc.churn.expect("churn forwarded");
        assert_eq!(built.mean_interarrival, SimDuration::from_secs(6));
        assert_eq!(built.mean_watch, SimDuration::from_secs(30));
        assert_eq!(built.min_watch, SimDuration::from_secs(4));
        assert_eq!(fc.fault_domains.len(), 1);
        assert_eq!(fc.fault_domains[0].label, "region");
        assert_eq!(fc.fault_domains[0].wifi.events().len(), 1);
        assert!(fc.fault_domains[0].cell.is_empty());
        let overload = fc.overload.expect("overload forwarded");
        assert_eq!(overload.max_active, 4);
        assert_eq!(overload.queue_threshold_bytes, 262144);
        assert_eq!(fc.watchdog, Some(true));

        // Documents without the keys keep the plain staggered fleet.
        let plain = Scenario::from_json(&fleet_doc(FLEET_PATCH)).unwrap();
        let fc = &plain.fleet_configs().unwrap()[0].1;
        assert!(fc.churn.is_none() && fc.fault_domains.is_empty());
        assert!(fc.overload.is_none() && fc.watchdog.is_none());
    }

    #[test]
    fn rejects_wedging_fleet_values() {
        for (patch, expect) in [
            (r#""fleet": {"clients": 0},"#, "'clients' must be > 0"),
            (
                r#""fleet": {"clients": 4, "stagger_s": -1.0},"#,
                "'stagger_s' must be >= 0",
            ),
            (
                r#""fleet": {"clients": 4, "rtt_skew_ms": -5},"#,
                "'rtt_skew_ms' must be a non-negative integer",
            ),
            (
                r#""fleet": {"clients": 4, "churn": {"mean_interarrival_s": 0.0, "mean_watch_s": 30}},"#,
                "'churn.mean_interarrival_s' must be a positive number",
            ),
            (
                r#""fleet": {"clients": 4, "churn": {"mean_interarrival_s": 6, "mean_watch_s": -2.0}},"#,
                "'churn.mean_watch_s' must be a positive number",
            ),
            (
                r#""fleet": {"clients": 4, "churn": {"mean_interarrival_s": 6, "mean_watch_s": 30, "min_watch_s": -1.0}},"#,
                "'churn.min_watch_s' must be >= 0",
            ),
            (
                r#""fleet": {"clients": 4, "churn": {"mean_watch_s": 30}},"#,
                "missing field 'mean_interarrival_s'",
            ),
            (
                r#""fleet": {"clients": 4, "fault_domains": [{"label": "r", "members": []}]},"#,
                "needs at least one member index",
            ),
            (
                r#""fleet": {"clients": 4, "fault_domains": [{"label": "r", "members": [7],
                   "wifi_faults": [{"disassociation": {"at_s": 1, "secs": 1}}]}]},"#,
                "member 7 is out of range",
            ),
            (
                r#""fleet": {"clients": 4, "fault_domains": [{"label": "r", "members": [1, 1],
                   "wifi_faults": [{"disassociation": {"at_s": 1, "secs": 1}}]}]},"#,
                "lists member 1 twice",
            ),
            (
                r#""fleet": {"clients": 4, "fault_domains": [{"label": "r", "members": [0]}]},"#,
                "has no fault scripts",
            ),
            (
                r#""fleet": {"clients": 4, "overload": {"max_active": 0}},"#,
                "'overload.max_active' must be > 0",
            ),
            (
                r#""fleet": {"clients": 4, "overload": {"max_active": 2, "queue_threshold_bytes": 0}},"#,
                "'overload.queue_threshold_bytes' must be > 0",
            ),
            (
                r#""fleet": {"clients": 4, "watchdog": "on"},"#,
                "'watchdog' must be a boolean",
            ),
            (
                r#""fleet": {"clients": 4, "shared": [{"rate_mbps": 10.0, "paths": []}]},"#,
                "at least one subscribing path",
            ),
            (
                r#""fleet": {"clients": 4, "shared": [{"rate_mbps": 0.0, "paths": ["wifi"]}]},"#,
                "'rate_mbps' must be > 0",
            ),
            (
                r#""fleet": {"clients": 4, "shared": [{"rate_mbps": 10.0, "capacity_bytes": 0, "paths": ["wifi"]}]},"#,
                "'capacity_bytes' must be > 0",
            ),
            (
                r#""fleet": {"clients": 4, "shared": [{"rate_mbps": 10.0, "discipline": "red", "paths": ["wifi"]}]},"#,
                "unknown discipline 'red' (expected fifo, fq, pie, fq_pie, or codel)",
            ),
            (
                r#""fleet": {"clients": 4, "shared": [{"rate_mbps": 10.0, "paths": ["starlink"]}]},"#,
                "unknown path 'starlink'",
            ),
            (
                r#""fleet": {"clients": 4, "shared": [{"rate_mbps": 10.0, "discipline": "fifo", "ecn": true, "paths": ["wifi"]}]},"#,
                "'ecn' only applies to an AQM discipline",
            ),
            (
                r#""fleet": {"clients": 4, "shared": [{"rate_mbps": 10.0, "discipline": "fq", "target_delay_ms": 15.0, "paths": ["wifi"]}]},"#,
                "'target_delay_ms' only applies to an AQM discipline",
            ),
            (
                r#""fleet": {"clients": 4, "shared": [{"rate_mbps": 10.0, "discipline": "pie", "target_delay_ms": 0.0, "paths": ["wifi"]}]},"#,
                "'target_delay_ms' must be > 0",
            ),
            (
                r#""fleet": {"clients": 4, "shared": [{"rate_mbps": 10.0, "discipline": "codel", "alpha": 0.125, "paths": ["wifi"]}]},"#,
                "'alpha'/'beta' are PIE gains",
            ),
            (
                r#""fleet": {"clients": 4, "shared": [{"rate_mbps": 10.0, "discipline": "pie", "quantum": 1540, "paths": ["wifi"]}]},"#,
                "'quantum' only applies to the per-flow disciplines",
            ),
            (
                r#""fleet": {"clients": 4, "shared": [{"rate_mbps": 10.0, "discipline": "pie", "beta": -1.0, "paths": ["wifi"]}]},"#,
                "'beta' must be >= 0",
            ),
        ] {
            let err = Scenario::from_json(&fleet_doc(patch)).unwrap_err();
            assert!(err.contains(expect), "{patch}: {err}");
        }
    }

    #[test]
    fn shipped_churn_scenario_parses() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/churn.json");
        let text = std::fs::read_to_string(path).unwrap();
        let sc = Scenario::from_json(&text).unwrap();
        let fleet = sc.fleet.as_ref().unwrap();
        assert!(fleet.churn.is_some());
        assert_eq!(fleet.fault_domains.len(), 1);
        assert!(fleet.overload.is_some());
        assert_eq!(fleet.watchdog, Some(true));
        assert!(sc.fleet_configs().is_ok());
    }

    #[test]
    fn shipped_fleet_scenario_parses() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/fleet.json");
        let text = std::fs::read_to_string(path).unwrap();
        let sc = Scenario::from_json(&text).unwrap();
        let fleet = sc.fleet.as_ref().unwrap();
        assert_eq!(fleet.clients, 16);
        assert!(!fleet.shared.is_empty());
        assert!(sc.fleet_configs().is_ok());
    }

    #[test]
    fn shipped_aqm_scenario_parses_to_fq_pie() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/aqm.json");
        let text = std::fs::read_to_string(path).unwrap();
        let sc = Scenario::from_json(&text).unwrap();
        let fleet = sc.fleet.as_ref().unwrap();
        assert_eq!(fleet.clients, 8);
        let ap = &fleet.shared[0];
        assert_eq!(ap.discipline, "fq_pie");
        assert!(matches!(
            ap.build().config.discipline,
            QueueDiscipline::FqPie { quantum: 1540, aqm }
                if aqm.ecn && aqm.target_ns == 15_000_000
        ));
        assert!(sc.fleet_configs().is_ok());
    }

    const ORIGINS_PATCH: &str = r#""origins": {
        "hedge_quantile": 0.5,
        "failure_threshold": 3,
        "pool": [
            {"id": "primary", "faults": [{"error_burst": {"at_s": 10, "secs": 3}}]},
            {"id": "backup", "rtt_penalty_ms": 30}
        ]
    },
    "cache": {"capacity_mb": 64, "edge_delay_ms": 8},"#;

    #[test]
    fn parses_origins_and_cache_onto_sessions() {
        let doc = fleet_doc(ORIGINS_PATCH);
        let sc = Scenario::from_json(&doc).unwrap();
        let origins = sc.origins.as_ref().unwrap();
        assert_eq!(origins.pool.len(), 2);
        assert_eq!(origins.hedge_quantile, Some(0.5));
        let configs = sc.build().unwrap();
        let pool = configs[0].1.origins.as_ref().unwrap();
        assert_eq!(pool.origins.len(), 2);
        assert_eq!(pool.origins[0].id, "primary");
        assert_eq!(pool.origins[0].faults.events().len(), 1);
        assert_eq!(
            pool.origins[1].rtt_penalty,
            SimDuration::from_millis(30),
            "the backup's RTT penalty survives the build"
        );
        assert_eq!(pool.failure_threshold, 3);
        assert_eq!(pool.hedge_quantile, Some(0.5));
        let cache = configs[0].1.cache.as_ref().unwrap();
        assert_eq!(cache.capacity_bytes(), 64 << 20);
        assert_eq!(cache.edge_delay(), SimDuration::from_millis(8));
        // Documents without the keys keep the single implicit origin.
        let plain = Scenario::from_json(DOC).unwrap();
        assert!(plain.origins.is_none() && plain.cache.is_none());
        assert!(plain.build().unwrap()[0].1.origins.is_none());
    }

    #[test]
    fn fleet_builds_share_one_cache_spec_not_a_live_handle() {
        let doc = fleet_doc(&format!("{FLEET_PATCH} {ORIGINS_PATCH}"));
        let sc = Scenario::from_json(&doc).unwrap();
        let configs = sc.fleet_configs().unwrap();
        let fc = &configs[0].1;
        let spec = fc.cache.expect("fleet inherits the cache key");
        assert_eq!(spec.capacity_bytes, 64 << 20);
        assert_eq!(spec.edge_delay, SimDuration::from_millis(8));
        assert!(
            fc.base.cache.is_none(),
            "the session-level handle must be stripped so each fleet run \
             builds a fresh cache"
        );
        assert!(fc.base.origins.is_some(), "the pool rides into the fleet");
    }

    #[test]
    fn rejects_bad_origins_and_cache_values() {
        for (patch, expect) in [
            (
                r#""origins": {"pool": []},"#,
                "'origins.pool' must list at least one origin",
            ),
            (
                r#""origins": {"pool": [{"id": "a"}, {"id": "a"}]},"#,
                "duplicate origin id 'a'",
            ),
            (
                r#""origins": {"hedge_quantile": 0.0, "pool": [{"id": "a"}]},"#,
                "'hedge_quantile' must be in (0,1]",
            ),
            (
                r#""origins": {"hedge_quantile": 1.5, "pool": [{"id": "a"}]},"#,
                "'hedge_quantile' must be in (0,1]",
            ),
            (
                r#""origins": {"failure_threshold": 0, "pool": [{"id": "a"}]},"#,
                "'failure_threshold' must be > 0",
            ),
            (
                r#""origins": {"pool": [{"rtt_penalty_ms": 5}]},"#,
                "missing field 'id'",
            ),
            (
                r#""cache": {"capacity_mb": 0},"#,
                "'capacity_mb' must be > 0",
            ),
            (
                r#""cache": {"capacity_mb": -3.5},"#,
                "'capacity_mb' must be > 0",
            ),
            (
                r#""cache": {"edge_delay_ms": 5},"#,
                "missing field 'capacity_mb'",
            ),
        ] {
            let err = Scenario::from_json(&fleet_doc(patch)).unwrap_err();
            assert!(err.contains(expect), "{patch}: {err}");
        }
    }

    #[test]
    fn shipped_origins_scenario_parses() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/origins.json");
        let text = std::fs::read_to_string(path).unwrap();
        let sc = Scenario::from_json(&text).unwrap();
        let origins = sc.origins.as_ref().unwrap();
        assert!(origins.pool.len() >= 2);
        assert!(origins.hedge_quantile.is_some());
        assert!(sc.cache.is_some());
        assert!(sc.build().is_ok());
    }

    #[test]
    fn custom_video_and_file_profile() {
        // Write a profile to a temp file and reference it.
        let dir = std::env::temp_dir().join("mpdash-scenario-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wifi.json");
        let spec = mpdash_trace::io::ProfileSpec {
            name: "t".into(),
            points: vec![
                mpdash_trace::io::ProfilePoint {
                    at_secs: 0.0,
                    mbps: 5.0,
                },
                mpdash_trace::io::ProfilePoint {
                    at_secs: 1.0,
                    mbps: 2.0,
                },
            ],
            period_secs: Some(2.0),
        };
        std::fs::write(&path, spec.to_json()).unwrap();
        let doc = format!(
            r#"{{
            "name": "custom",
            "video": {{"custom": {{"levels_mbps": [1.0, 2.0], "chunk_secs": 2, "n_chunks": 10}}}},
            "wifi": {{"file": "{}"}},
            "cell": {{"constant": 3.0}},
            "abr": "gpac",
            "buffer_secs": 20,
            "modes": ["vanilla"]
        }}"#,
            path.display()
        );
        let sc = Scenario::from_json(&doc).unwrap();
        let configs = sc.build().unwrap();
        assert_eq!(configs[0].1.video.n_levels(), 2);
        assert_eq!(configs[0].1.buffer_capacity, SimDuration::from_secs(20));
    }
}
