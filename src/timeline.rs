//! `mpdash timeline <scenario.json>`: fleet-wide time series over
//! virtual time.
//!
//! The scenario runner prints end-of-run aggregates; this command
//! renders *when* things happened. It runs the document's fleet once
//! per mode with epoch telemetry forced on, folds every client's
//! [`EpochSeries`], every shared bottleneck's, and the fleet loop's own
//! series into one fleet-wide series per mode, and renders the signals
//! the capacity questions need — deadline-miss rate, cellular bytes,
//! cache hit ratio, shared-queue depth, per-epoch QoE — as aligned
//! sparklines plus machine-readable NDJSON under `results/`.
//!
//! Determinism: every NDJSON byte derives from epoch series, which
//! merge associatively, so output is identical at any `MPDASH_WORKERS`
//! — CI diffs the file across worker counts. The wall-clock loop
//! profile is intrinsically machine-dependent, so it is quarantined in
//! `results/PROF_fleet.json` and never enters the NDJSON.

use crate::scenario::Scenario;
use mpdash_dash::QoeScore;
use mpdash_fleet::{run as run_fleet, FleetConfig};
use mpdash_obs::{EpochSeries, TelemetrySpec};
use mpdash_results::{artifact_dir, Json};
use mpdash_session::{run_batch, Job, JobReport};

/// Options parsed from the `timeline` command line.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimelineOptions {
    /// Reduced run: cap the fleet at 8 clients per mode.
    pub quick: bool,
}

/// Widest sparkline the report prints; longer series are downsampled
/// (deterministically, by averaging fixed-size epoch groups).
const SPARK_WIDTH: usize = 64;

/// Everything `mpdash timeline` produced: the rendered report plus the
/// artifact paths it wrote.
pub struct TimelineOutput {
    /// Human-readable report (sparklines + per-mode tables).
    pub rendered: String,
    /// The NDJSON export path (one line per mode per epoch).
    pub ndjson_path: std::path::PathBuf,
    /// The loop-profile path (`PROF_fleet.json`).
    pub profile_path: std::path::PathBuf,
}

/// Run the scenario's fleet per mode and build the timeline report.
/// Errors when the document has no `fleet` key or fails to build.
pub fn timeline_scenario(
    scenario: &Scenario,
    opts: &TimelineOptions,
) -> Result<TimelineOutput, String> {
    if scenario.fleet.is_none() {
        return Err("scenario has no 'fleet' key (timeline renders fleet runs)".into());
    }
    // Telemetry is the whole point here: force it on when the document
    // doesn't ask for it (default one-second epochs).
    let spec = scenario.telemetry.unwrap_or_default();
    let mut configs = scenario.fleet_configs()?;
    for (_, fc) in configs.iter_mut() {
        *fc = fc.clone().with_telemetry(spec).with_wall_profile();
        if opts.quick {
            fc.clients = fc.clients.min(8);
        }
    }

    // One job per mode through the ordinary order-preserving batch
    // machinery: results come back in declaration order whatever
    // MPDASH_WORKERS says, and each job's value is pure epoch data.
    let jobs: Vec<Job> = configs
        .into_iter()
        .map(|(label, fc)| {
            Job::custom(label.clone(), move || {
                JobReport::Value(Box::new(mode_timeline(&label, &fc)))
            })
        })
        .collect();
    let results = run_batch(jobs);
    let mut modes = Vec::new();
    for r in &results {
        let v = r.value().map_err(|e| format!("job {}: {e}", r.label))?;
        modes.push(v.clone());
    }

    let rendered = render(scenario, opts, &modes);
    let dir = artifact_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;

    // NDJSON: deterministic rows only, one line per mode per epoch.
    let ndjson_path = dir.join(format!("TIMELINE_{}.ndjson", slug(&scenario.name)));
    let mut ndjson = String::new();
    for mode in &modes {
        for row in rows(mode) {
            ndjson.push_str(&row.to_compact());
            ndjson.push('\n');
        }
    }
    std::fs::write(&ndjson_path, &ndjson)
        .map_err(|e| format!("writing {}: {e}", ndjson_path.display()))?;

    // The loop profile: deterministic span counters beside the
    // wall-clock phase breakdown. Machine-dependent by design, hence a
    // separate artifact that no determinism gate compares.
    let profile_path = dir.join("PROF_fleet.json");
    let prof = Json::obj([
        ("scenario", Json::from(scenario.name.as_str())),
        (
            "modes",
            Json::arr(modes.iter().map(|m| {
                Json::obj([
                    ("mode", m.get("mode").cloned().unwrap_or(Json::Null)),
                    ("loop", m.get("loop").cloned().unwrap_or(Json::Null)),
                    ("wall", m.get("wall").cloned().unwrap_or(Json::Null)),
                ])
            })),
        ),
    ]);
    std::fs::write(&profile_path, prof.to_pretty())
        .map_err(|e| format!("writing {}: {e}", profile_path.display()))?;

    Ok(TimelineOutput {
        rendered,
        ndjson_path,
        profile_path,
    })
}

/// Run one mode's fleet and reduce it to the timeline's JSON: one row
/// per epoch plus loop/wall profiles. Every field except `wall` is a
/// pure function of the fleet config.
fn mode_timeline(label: &str, fc: &FleetConfig) -> Json {
    let report = run_fleet(fc);
    let epoch = report
        .epochs
        .as_ref()
        .map(|e| e.epoch_len())
        .unwrap_or_default();
    // Fold clients + bottlenecks + loop into one series: the signal
    // names are disjoint, and one dense grid keeps the rows aligned.
    let mut all = report
        .epochs
        .clone()
        .unwrap_or_else(|| EpochSeries::new(TelemetrySpec::new(epoch)));
    for bn in &report.bottlenecks {
        if let Some(e) = &bn.epochs {
            all.merge(e);
        }
    }
    if let Some(e) = &report.profile.epochs {
        all.merge(e);
    }

    let top_rung_mbps = fc
        .base
        .video
        .bitrate(fc.base.video.n_levels() - 1)
        .as_mbps_f64();
    let epoch_s = epoch.as_secs_f64();
    // Running arrivals-minus-departures: the fleet loop's lifecycle
    // counters integrate into the concurrency the capacity questions
    // care about. Shed sessions never arrive, so they don't inflate it.
    let mut active: i64 = 0;
    let rows = all.cells().map(move |(i, c)| {
        let hits = c.counter("deadline_hits");
        let misses = c.counter("deadline_misses");
        let miss_rate = misses as f64 / (hits + misses).max(1) as f64;
        let cache_hits = c.counter("cache_hits");
        let cache_misses = c.counter("cache_misses");
        let cache_ratio = cache_hits as f64 / (cache_hits + cache_misses).max(1) as f64;
        let queue_depth = c
            .histogram("queue_depth_bytes")
            .map(|h| h.sum() as f64 / h.count().max(1) as f64)
            .unwrap_or(0.0);
        // Mean sojourn of the epoch's departures — bufferbloat over
        // time, and the signal an AQM holds near its target.
        let queue_wait = c
            .histogram("queue_wait_ms")
            .map(|h| h.sum() as f64 / h.count().max(1) as f64)
            .unwrap_or(0.0);
        // PIE's drop probability (parts per million), sampled at each
        // departure; zero on non-AQM fleets, whose series lack the cell.
        let aqm_prob = c
            .histogram("aqm_drop_prob_ppm")
            .map(|h| h.sum() as f64 / h.count().max(1) as f64)
            .unwrap_or(0.0);
        let arrivals = c.counter("fleet_arrivals");
        let departures = c.counter("fleet_departures");
        let shed = c.counter("fleet_shed");
        active += arrivals as i64 - departures as i64;
        let qoe = QoeScore::from_epoch(
            c.counter("chunks"),
            c.counter("chunk_bitrate_kbps"),
            c.counter("switches"),
            c.counter("stall_ms"),
            epoch,
            top_rung_mbps,
        );
        Json::obj([
            ("mode", Json::from(label)),
            ("epoch", Json::from(i)),
            ("t_s", Json::Float(i as f64 * epoch_s)),
            ("deadline_hits", Json::from(hits)),
            ("deadline_misses", Json::from(misses)),
            ("miss_rate", Json::Float(miss_rate)),
            ("wifi_bytes", Json::from(c.counter("wifi_bytes"))),
            ("cell_bytes", Json::from(c.counter("cell_bytes"))),
            ("chunks", Json::from(c.counter("chunks"))),
            ("switches", Json::from(c.counter("switches"))),
            ("stall_ms", Json::from(c.counter("stall_ms"))),
            ("cache_hits", Json::from(cache_hits)),
            ("cache_misses", Json::from(cache_misses)),
            ("cache_hit_ratio", Json::Float(cache_ratio)),
            ("queue_depth_mean", Json::Float(queue_depth)),
            ("queue_wait_mean_ms", Json::Float(queue_wait)),
            ("aqm_drop_prob_ppm_mean", Json::Float(aqm_prob)),
            (
                "shared_dropped_bytes",
                Json::from(c.counter("shared_dropped_bytes")),
            ),
            ("wasted_bytes", Json::from(c.counter("wasted_bytes"))),
            ("loop_steps", Json::from(c.counter("loop_steps"))),
            ("loop_departures", Json::from(c.counter("loop_departures"))),
            ("fleet_arrivals", Json::from(arrivals)),
            ("fleet_departures", Json::from(departures)),
            ("fleet_shed", Json::from(shed)),
            ("active_sessions", Json::from(active.max(0) as u64)),
            ("qoe_composite", Json::Float(qoe.composite)),
        ])
    });

    let qoe_mean = if report.sessions.is_empty() {
        0.0
    } else {
        report
            .sessions
            .iter()
            .map(|s| s.qoe_score.composite)
            .sum::<f64>()
            / report.sessions.len() as f64
    };
    Json::obj([
        ("mode", Json::from(label)),
        ("clients", Json::from(report.sessions.len())),
        ("epoch_s", Json::Float(epoch_s)),
        ("qoe_mean", Json::Float(qoe_mean)),
        ("miss_rate", Json::Float(report.deadline_miss_rate)),
        ("rows", Json::arr(rows)),
        ("loop", report.profile.to_json()),
        (
            "wall",
            report
                .wall_profile
                .map(|w| w.to_json())
                .unwrap_or(Json::Null),
        ),
    ])
}

/// The per-epoch rows of one mode's timeline value.
fn rows(mode: &Json) -> &[Json] {
    mode.get("rows").and_then(|r| r.as_arr()).unwrap_or(&[])
}

fn row_f64(row: &Json, key: &str) -> f64 {
    row.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
}

/// Downsample to at most `SPARK_WIDTH` columns by averaging fixed-size
/// groups of epochs, then render one glyph per column scaled to the
/// series max. All-zero series render as a flat baseline.
fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let group = values.len().div_ceil(SPARK_WIDTH);
    let cols: Vec<f64> = values
        .chunks(group)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    let max = cols.iter().cloned().fold(0.0_f64, f64::max);
    cols.iter()
        .map(|&v| {
            if max <= 0.0 {
                GLYPHS[0]
            } else {
                let idx = (v / max * (GLYPHS.len() - 1) as f64).round() as usize;
                GLYPHS[idx.min(GLYPHS.len() - 1)]
            }
        })
        .collect()
}

fn render(scenario: &Scenario, opts: &TimelineOptions, modes: &[Json]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline: {}{} — {} mode(s), sparklines over virtual time",
        scenario.name,
        if opts.quick { " [quick]" } else { "" },
        modes.len()
    );
    for mode in modes {
        let label = mode
            .get("mode")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string();
        let rows = rows(mode);
        let n = rows.len();
        let epoch_s = mode.get("epoch_s").and_then(|v| v.as_f64()).unwrap_or(0.0);
        let span = n as f64 * epoch_s;
        let _ =
            writeln!(
            out,
            "\n{label}: {n} epochs x {epoch_s:.1}s ({span:.0}s), mean QoE {:.1}, miss rate {:.3}",
            mode.get("qoe_mean").and_then(|v| v.as_f64()).unwrap_or(0.0),
            mode.get("miss_rate").and_then(|v| v.as_f64()).unwrap_or(0.0),
        );
        let series = |key: &str| -> Vec<f64> { rows.iter().map(|r| row_f64(r, key)).collect() };
        for (title, key, unit_scale, unit) in [
            ("miss rate", "miss_rate", 1.0, ""),
            ("LTE bytes", "cell_bytes", 1e-6, " MB"),
            ("cache hit%", "cache_hit_ratio", 100.0, "%"),
            ("queue depth", "queue_depth_mean", 1e-3, " KB"),
            ("queue delay", "queue_wait_mean_ms", 1.0, " ms"),
            ("aqm prob", "aqm_drop_prob_ppm_mean", 1e-4, "%"),
            ("QoE", "qoe_composite", 1.0, ""),
            ("loop steps", "loop_steps", 1.0, ""),
            ("active sess", "active_sessions", 1.0, ""),
            ("shed", "fleet_shed", 1.0, ""),
        ] {
            let vals = series(key);
            let peak = vals.iter().cloned().fold(0.0_f64, f64::max);
            let _ = writeln!(
                out,
                "  {title:<12} {} peak {:.2}{unit}",
                sparkline(&vals),
                peak * unit_scale,
            );
        }
    }
    out
}

/// Lowercase alphanumeric artifact stem for the scenario name.
fn slug(name: &str) -> String {
    let s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() {
        "scenario".into()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
        "name": "Timeline Demo",
        "video": {"custom": {"levels_mbps": [0.6, 1.5, 3.0], "chunk_secs": 4, "n_chunks": 15}},
        "wifi": {"constant": 8.0},
        "cell": {"constant": 4.0},
        "abr": "festive",
        "modes": ["vanilla", "mpdash_rate"],
        "telemetry": {"epoch_s": 2.0},
        "cache": {"capacity_mb": 64},
        "fleet": {
            "clients": 3,
            "shared": [{"rate_mbps": 10.0, "paths": ["wifi"]}]
        }
    }"#;

    fn demo_modes() -> Vec<Json> {
        let sc = Scenario::from_json(DOC).unwrap();
        let spec = sc.telemetry.unwrap();
        sc.fleet_configs()
            .unwrap()
            .into_iter()
            .map(|(label, fc)| mode_timeline(&label, &fc.with_telemetry(spec)))
            .collect()
    }

    #[test]
    fn mode_timeline_rows_are_deterministic_and_dense() {
        let a = demo_modes();
        let b = demo_modes();
        for (ma, mb) in a.iter().zip(&b) {
            // The deterministic surface (everything but wall) matches
            // bit for bit across runs.
            assert_eq!(
                Json::arr(rows(ma).iter().cloned()).to_pretty(),
                Json::arr(rows(mb).iter().cloned()).to_pretty()
            );
            let rows = rows(ma);
            assert!(rows.len() > 5, "a real run spans many epochs");
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(r.get("epoch").and_then(|v| v.as_u64()), Some(i as u64));
            }
            let bytes: u64 = rows
                .iter()
                .map(|r| r.get("cell_bytes").and_then(|v| v.as_u64()).unwrap_or(0))
                .sum();
            assert!(bytes > 0, "cellular traffic shows up in the series");
        }
    }

    #[test]
    fn active_sessions_track_follows_churn_and_shedding() {
        let doc = r#"{
            "name": "churn-track",
            "video": {"custom": {"levels_mbps": [0.6, 1.5], "chunk_secs": 4, "n_chunks": 10}},
            "wifi": {"constant": 8.0},
            "cell": {"constant": 4.0},
            "abr": "festive",
            "buffer_secs": 8,
            "modes": ["mpdash_rate"],
            "telemetry": {"epoch_s": 2.0},
            "fleet": {
                "clients": 8,
                "seed": 23,
                "watchdog": true,
                "churn": {"mean_interarrival_s": 2.0, "mean_watch_s": 20.0},
                "overload": {"max_active": 2},
                "shared": [{"rate_mbps": 6.0, "paths": ["wifi"]}]
            }
        }"#;
        let sc = Scenario::from_json(doc).unwrap();
        let spec = sc.telemetry.unwrap();
        let (label, fc) = sc.fleet_configs().unwrap().remove(0);
        let mode = mode_timeline(&label, &fc.with_telemetry(spec));
        let rows = rows(&mode);
        let sum = |key: &str| -> u64 { rows.iter().map(|r| row_f64(r, key) as u64).sum() };
        let arrivals = sum("fleet_arrivals");
        let departures = sum("fleet_departures");
        let shed = sum("fleet_shed");
        assert!(arrivals > 0, "admitted sessions arrive");
        assert_eq!(
            arrivals, departures,
            "every admitted session eventually departs"
        );
        assert!(shed > 0, "the cap sheds some of the 8 packed arrivals");
        assert_eq!(arrivals + shed, 8, "every client is admitted or shed");
        let active: Vec<f64> = rows.iter().map(|r| row_f64(r, "active_sessions")).collect();
        let peak = active.iter().cloned().fold(0.0, f64::max);
        assert!(
            (1.0..=2.0).contains(&peak),
            "active sessions stay within the admission cap, peak {peak}"
        );
        assert_eq!(
            *active.last().unwrap(),
            0.0,
            "the fleet drains to zero active sessions"
        );
    }

    #[test]
    fn aqm_fleet_surfaces_queue_delay_and_drop_probability() {
        let doc = r#"{
            "name": "aqm-track",
            "video": {"custom": {"levels_mbps": [0.6, 1.5, 3.0], "chunk_secs": 4, "n_chunks": 10}},
            "wifi": {"constant": 8.0},
            "cell": {"constant": 4.0},
            "abr": "festive",
            "buffer_secs": 8,
            "modes": ["mpdash_rate"],
            "telemetry": {"epoch_s": 2.0},
            "fleet": {
                "clients": 4,
                "shared": [{"rate_mbps": 4.0, "discipline": "pie", "paths": ["wifi"]}]
            }
        }"#;
        let sc = Scenario::from_json(doc).unwrap();
        let spec = sc.telemetry.unwrap();
        let (label, fc) = sc.fleet_configs().unwrap().remove(0);
        let mode = mode_timeline(&label, &fc.with_telemetry(spec));
        let rows = rows(&mode);
        let peak =
            |key: &str| -> f64 { rows.iter().map(|r| row_f64(r, key)).fold(0.0_f64, f64::max) };
        assert!(
            peak("queue_wait_mean_ms") > 0.0,
            "a contended bottleneck shows queue delay"
        );
        assert!(
            peak("aqm_drop_prob_ppm_mean") > 0.0,
            "sustained contention raises PIE's drop probability"
        );
        let text = render(&sc, &TimelineOptions::default(), &[mode]);
        assert!(text.contains("queue delay"), "{text}");
        assert!(text.contains("aqm prob"), "{text}");
    }

    #[test]
    fn sparklines_scale_and_downsample() {
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        assert_eq!(sparkline(&[1.0, 7.0]).chars().count(), 2);
        assert_eq!(sparkline(&[0.0, 7.0]), "▁█");
        let long: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        assert!(sparkline(&long).chars().count() <= SPARK_WIDTH);
    }

    #[test]
    fn slugs_are_filesystem_safe() {
        assert_eq!(slug("Timeline Demo"), "timeline_demo");
        assert_eq!(slug(""), "scenario");
    }
}
