//! Cross-crate integration: full streaming sessions through the whole
//! stack (links → MPTCP → HTTP → player → MP-DASH control → energy),
//! checking the invariants every configuration must uphold.

use mpdash::dash::abr::AbrKind;
use mpdash::dash::video::Video;
use mpdash::session::{SessionConfig, SessionReport, StreamingSession, TransportMode};
use mpdash::sim::SimDuration;
use mpdash::trace::table1;

/// A short video keeps debug-mode runtimes reasonable while exercising
/// startup, steady state, and pacing.
fn short_video() -> Video {
    Video::new(
        "BBB-e2e",
        &[0.58, 1.01, 1.47, 2.41, 3.94],
        SimDuration::from_secs(4),
        30,
    )
}

fn run(abr: AbrKind, mode: TransportMode) -> SessionReport {
    let cfg =
        SessionConfig::controlled(table1::synthetic_profile_pair(3.8, 3.0, 0.10, 7), abr, mode)
            .with_video(short_video());
    StreamingSession::run(cfg)
}

#[test]
fn every_abr_and_mode_completes_without_stalls() {
    for abr in [
        AbrKind::Gpac,
        AbrKind::Festive,
        AbrKind::Bba,
        AbrKind::BbaC,
        AbrKind::Mpc,
    ] {
        for mode in [
            TransportMode::Vanilla,
            TransportMode::mpdash_rate_based(),
            TransportMode::mpdash_duration_based(),
        ] {
            let r = run(abr, mode);
            assert_eq!(r.chunks.len(), 30, "{:?}/{:?}: all chunks", abr, mode);
            assert_eq!(
                r.qoe.stalls, 0,
                "{:?}/{:?}: no stalls on an easy network",
                abr, mode
            );
            // Bytes conservation: the two paths carried at least the
            // video payload plus HTTP headers.
            let body: u64 = r.chunks.iter().map(|c| c.size).sum();
            assert!(
                r.wifi_bytes + r.cell_bytes >= body,
                "{:?}/{:?}: conservation",
                abr,
                mode
            );
            // Chunk bodies are disjoint, ordered, and size-consistent.
            for w in r.chunks.windows(2) {
                assert!(w[1].body_dss.start >= w[0].body_dss.end);
            }
            for c in &r.chunks {
                assert_eq!(c.body_dss.len(), c.size);
                assert!(c.completed > c.started);
            }
            // Energy is positive and finite.
            assert!(r.energy.total_j().is_finite() && r.energy.total_j() > 0.0);
        }
    }
}

#[test]
fn mpdash_beats_baseline_on_cellular_for_every_throughput_abr() {
    for abr in [AbrKind::Gpac, AbrKind::Festive, AbrKind::Mpc] {
        let base = run(abr, TransportMode::Vanilla);
        let mp = run(abr, TransportMode::mpdash_rate_based());
        assert!(
            mp.cell_bytes < base.cell_bytes,
            "{:?}: {} vs {}",
            abr,
            mp.cell_bytes,
            base.cell_bytes
        );
        // QoE preserved.
        assert!(mp.qoe.bitrate_reduction_vs(&base.qoe) < 0.10, "{abr:?}");
    }
}

#[test]
fn wifi_only_mode_never_touches_cellular() {
    let r = run(AbrKind::Festive, TransportMode::WifiOnly);
    assert_eq!(r.cell_bytes, 0);
    assert_eq!(r.energy.lte.active_j, 0.0, "LTE radio never leaves idle");
}

#[test]
fn throttled_mode_caps_cellular_rate() {
    let r = run(AbrKind::Gpac, TransportMode::Throttled { kbps: 700 });
    // 700 kbps over the whole session bounds cellular bytes.
    let cap = 700_000 / 8 * (r.duration.as_secs_f64() as u64 + 5);
    assert!(
        r.cell_bytes <= cap,
        "cell {} exceeds throttle cap {}",
        r.cell_bytes,
        cap
    );
}

#[test]
fn reports_are_deterministic() {
    let a = run(AbrKind::Festive, TransportMode::mpdash_rate_based());
    let b = run(AbrKind::Festive, TransportMode::mpdash_rate_based());
    assert_eq!(a.wifi_bytes, b.wifi_bytes);
    assert_eq!(a.cell_bytes, b.cell_bytes);
    assert_eq!(a.qoe, b.qoe);
    assert_eq!(a.energy.total_j(), b.energy.total_j());
}

#[test]
fn scheduler_stats_only_under_mpdash() {
    let base = run(AbrKind::Festive, TransportMode::Vanilla);
    assert_eq!(
        base.scheduler_stats,
        mpdash::session::SchedulerStats::default()
    );
    let mp = run(AbrKind::Festive, TransportMode::mpdash_rate_based());
    let stats = mp.scheduler_stats;
    assert_eq!(
        stats.missed_deadlines, 0,
        "easy network: no missed deadlines"
    );
    assert!(
        stats.completed_transfers > 0,
        "some chunks must be scheduled"
    );
}
