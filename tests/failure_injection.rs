//! Failure injection: blackouts and loss. The whole point of MP-DASH is
//! that the costly path rescues playback when the preferred one fails —
//! these tests cut WiFi mid-session and check exactly that.

use mpdash::dash::abr::AbrKind;
use mpdash::dash::video::Video;
use mpdash::link::{BandwidthProfile, FaultScript, LinkConfig, PathId};
use mpdash::session::{SessionConfig, SessionReport, StreamingSession, TransportMode};
use mpdash::sim::{Rate, SimDuration, SimTime};

fn short_video(chunks: usize) -> Video {
    Video::new(
        "BBB-fault",
        &[0.58, 1.01, 1.47, 2.41, 3.94],
        SimDuration::from_secs(4),
        chunks,
    )
}

/// WiFi at `mbps` with a hard blackout in `[from, to)` seconds.
fn wifi_with_blackout(mbps: f64, from: u64, to: u64, total: u64) -> BandwidthProfile {
    let slot = SimDuration::from_secs(1);
    let samples: Vec<Rate> = (0..total)
        .map(|s| {
            if s >= from && s < to {
                Rate::ZERO
            } else {
                Rate::from_mbps_f64(mbps)
            }
        })
        .collect();
    BandwidthProfile::from_samples(slot, &samples, true)
}

fn run(wifi: BandwidthProfile, cell_mbps: f64, mode: TransportMode) -> SessionReport {
    let cell = BandwidthProfile::Constant(Rate::from_mbps_f64(cell_mbps));
    let cfg =
        SessionConfig::controlled((wifi, cell), AbrKind::Festive, mode).with_video(short_video(30));
    StreamingSession::run(cfg)
}

#[test]
fn wifi_blackout_is_rescued_by_cellular_under_mpdash() {
    // WiFi healthy at 4.5 Mbps, dead from t=40 to t=55.
    let mk = || wifi_with_blackout(4.5, 40, 55, 130);
    let mp = run(mk(), 4.0, TransportMode::mpdash_rate_based());
    assert_eq!(
        mp.qoe.stalls, 0,
        "cellular must bridge the WiFi outage without a stall"
    );
    assert_eq!(mp.chunks.len(), 30);
    // Cellular was actually used during the outage window.
    let outage_cell: u64 = mp
        .records
        .iter()
        .filter(|r| {
            r.path == PathId::CELLULAR && r.t.as_secs_f64() >= 40.0 && r.t.as_secs_f64() < 60.0
        })
        .map(|r| r.len)
        .sum();
    assert!(
        outage_cell > 1_000_000,
        "cellular carried only {outage_cell} bytes during the outage"
    );

    // The same outage on WiFi-only drains the 40 s buffer? No — the
    // buffer covers a 15 s outage. Use a longer one for the stall check.
    let long_outage = wifi_with_blackout(4.5, 40, 95, 130);
    let wifi_only = run(long_outage, 4.0, TransportMode::WifiOnly);
    assert!(
        wifi_only.qoe.stalls > 0 || wifi_only.qoe.mean_bitrate_mbps < 2.0,
        "a 55 s outage must hurt WiFi-only playback (stalls {} bitrate {:.2})",
        wifi_only.qoe.stalls,
        wifi_only.qoe.mean_bitrate_mbps
    );
    // While MP-DASH rides through even that.
    let mp_long = run(
        wifi_with_blackout(4.5, 40, 95, 130),
        4.0,
        TransportMode::mpdash_rate_based(),
    );
    assert_eq!(
        mp_long.qoe.stalls, 0,
        "MP-DASH must survive the long outage"
    );
}

#[test]
fn wifi_reassociation_fault_is_bridged_by_cellular_without_stalls() {
    // The AP kicks the client at t=40 s; the radio stays dark for 15 s
    // and the re-handshake costs another 2 s. That outage outlives the
    // subflow's RTO budget, so MPTCP must declare the WiFi subflow
    // failed, rescue its in-flight data over cellular, and re-establish
    // the subflow from scratch once packets flow again — all without the
    // player noticing.
    let faults = FaultScript::new().disassociation(
        SimTime::ZERO + SimDuration::from_secs(40),
        SimDuration::from_secs(15),
        SimDuration::from_secs(2),
    );
    let cfg = SessionConfig::controlled_mbps(
        4.5,
        4.0,
        AbrKind::Festive,
        TransportMode::mpdash_rate_based(),
    )
    .with_video(short_video(30))
    .with_wifi_faults(faults);
    let r = StreamingSession::run(cfg);

    assert_eq!(r.qoe.stalls, 0, "cellular must bridge the reassociation");
    assert_eq!(r.chunks.len(), 30, "every chunk completes");
    // The degradation counters record the failover and the revival.
    assert!(
        r.degradation.subflow_failures > 0,
        "the 17 s outage must exhaust the RTO budget and fail the subflow"
    );
    assert!(
        r.degradation.subflow_revivals > 0,
        "the subflow must re-establish after reassociation"
    );
    assert!(
        r.degradation.outage_bridged_chunks > 0,
        "chunks inside the outage must ride almost entirely on cellular"
    );
    // Cellular actually carried payload inside the fault window.
    let outage_cell: u64 = r
        .records
        .iter()
        .filter(|p| {
            p.path == PathId::CELLULAR && p.t.as_secs_f64() >= 40.0 && p.t.as_secs_f64() < 60.0
        })
        .map(|p| p.len)
        .sum();
    assert!(
        outage_cell > 1_000_000,
        "cellular carried only {outage_cell} bytes during the outage"
    );
    // WiFi traffic resumes after reassociation: the session is not stuck
    // on the costly path for its remaining minute.
    let wifi_after: u64 = r
        .records
        .iter()
        .filter(|p| p.path == PathId::WIFI && p.t.as_secs_f64() >= 60.0)
        .map(|p| p.len)
        .sum();
    assert!(
        wifi_after > 1_000_000,
        "WiFi must carry traffic again after reassociation ({wifi_after} bytes)"
    );
}

#[test]
fn cellular_blackout_is_invisible_when_wifi_suffices() {
    // Cellular dies completely; WiFi at 6 Mbps carries everything.
    let wifi = BandwidthProfile::Constant(Rate::from_mbps_f64(6.0));
    let cell = BandwidthProfile::Constant(Rate::ZERO);
    let cfg = SessionConfig::controlled(
        (wifi, cell),
        AbrKind::Festive,
        TransportMode::mpdash_rate_based(),
    )
    .with_video(short_video(40));
    let r = StreamingSession::run(cfg);
    assert_eq!(r.qoe.stalls, 0);
    assert_eq!(r.cell_bytes, 0);
    // Early chunks pay RTO+reinjection penalties while the dead cellular
    // subflow is probed and abandoned, and FESTIVE's stability gate
    // climbs one level per few chunks; the session must still converge
    // to the top level with healthy average quality.
    assert!(
        r.qoe.mean_bitrate_mbps > 2.0,
        "bitrate {:.2}",
        r.qoe.mean_bitrate_mbps
    );
    assert_eq!(r.chunks.last().unwrap().level, 4, "converges to the top");
}

#[test]
fn random_loss_does_not_break_sessions() {
    // 2% i.i.d. loss on both paths: QoE degrades gracefully, nothing
    // wedges, the chunk log stays complete.
    let wifi = LinkConfig::constant(3.8, SimDuration::from_millis(25)).with_loss(0.02, 97);
    let cell = LinkConfig::constant(3.0, SimDuration::from_micros(27_500)).with_loss(0.02, 98);
    let mut cfg = SessionConfig::controlled(
        (
            BandwidthProfile::constant_mbps(3.8),
            BandwidthProfile::constant_mbps(3.0),
        ),
        AbrKind::Festive,
        TransportMode::mpdash_rate_based(),
    )
    .with_video(short_video(25));
    cfg.wifi = wifi;
    cfg.cell = cell;
    let r = StreamingSession::run(cfg);
    assert_eq!(r.chunks.len(), 25);
    // Random multi-loss windows during the thin-buffered startup can
    // cost one brief stall; more would indicate a recovery bug.
    assert!(r.qoe.stalls <= 1, "stalls {}", r.qoe.stalls);
}

#[test]
fn repeated_short_fades_toggle_cellular_adaptively() {
    // WiFi fades for 5 s every 30 s: MP-DASH should enable cellular
    // during fades and drop it between them.
    let slot = SimDuration::from_secs(1);
    let samples: Vec<Rate> = (0..30u64)
        .map(|s| {
            if s < 5 {
                Rate::from_mbps_f64(0.3)
            } else {
                Rate::from_mbps_f64(5.0)
            }
        })
        .collect();
    let wifi = BandwidthProfile::from_samples(slot, &samples, true);
    let r = run(wifi, 4.0, TransportMode::mpdash_rate_based());
    assert_eq!(r.qoe.stalls, 0);
    let toggles = r.scheduler_stats.toggles;
    assert!(toggles >= 2, "fades should drive on/off cycles: {toggles}");
    // Cellular used, but far from everything.
    assert!(r.cell_bytes > 0);
    assert!(r.cell_fraction() < 0.5, "fraction {:.2}", r.cell_fraction());
}
