//! Manifest-driven sizing end-to-end: the §5.1 point that exact chunk
//! sizes (whether from a size-carrying manifest or from Content-Length)
//! are what arm the scheduler correctly.

use mpdash::dash::manifest::Manifest;
use mpdash::dash::video::Video;
use mpdash::sim::SimDuration;

#[test]
fn sized_manifest_round_trips_through_xml_for_every_dataset_video() {
    for v in [
        Video::big_buck_bunny(),
        Video::red_bull_playstreets(),
        Video::tears_of_steel(),
        Video::tears_of_steel_hd(),
    ] {
        let m = Manifest::from_video_with_sizes(&v);
        let back = Manifest::from_xml(&m.to_xml()).expect("round trip");
        assert_eq!(m, back, "{}", v.name());
        // Declared totals equal the video's ground truth at every level.
        for lvl in 0..v.n_levels() {
            assert_eq!(back.representation_bytes(lvl), Some(v.total_bytes_at(lvl)));
        }
    }
}

#[test]
fn plain_manifest_hint_error_is_bounded_by_the_vbr_spread() {
    let v = Video::big_buck_bunny();
    let m = Manifest::from_video(&v);
    for i in 0..v.n_chunks() {
        let truth = v.chunk_size(i, 4) as f64;
        let hint = m.size_hint(i, 4) as f64;
        let err = (hint - truth).abs() / truth;
        // The VBR spread is ±25%; relative error of the nominal hint is
        // bounded by spread/(1−spread) ≈ 33%.
        assert!(err < 0.34, "chunk {i}: {err:.3}");
    }
}

#[test]
fn manifest_segment_timing_matches_the_player_contract() {
    let v = Video::new("t", &[1.0, 2.0], SimDuration::from_secs(6), 7);
    let m = Manifest::from_video(&v);
    assert_eq!(m.segment_duration, SimDuration::from_secs(6));
    assert_eq!(m.segment_count, 7);
    assert_eq!(m.representations.len(), 2);
    assert_eq!(m.representations[0].bandwidth_bps, 1_000_000);
}
