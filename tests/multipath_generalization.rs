//! §4's N-interface generalization, end-to-end on the transport: three
//! paths with distinct costs (say WiFi, LTE, and a 5G link that is fast
//! but dearest), driven by the cost-sorted greedy scheduler through the
//! same MP-DASH control plane the two-path experiments use.

use mpdash::core::deadline::SchedulerParams;
use mpdash::core::MpDashControl;
use mpdash::link::{LinkConfig, PathId};
use mpdash::mptcp::CcKind;
use mpdash::mptcp::{MptcpConfig, MptcpSim, PathConfig, PathMask, SchedulerSpec};
use mpdash::sim::{Rate, SimDuration, SimTime};

const TICK: SimDuration = SimDuration::from_millis(50);
const TICK_ID: u64 = 9000;

fn three_path_sim(wifi_mbps: f64, lte_mbps: f64, fiveg_mbps: f64) -> MptcpSim {
    MptcpSim::new(MptcpConfig {
        paths: vec![
            PathConfig::symmetric(LinkConfig::constant(
                wifi_mbps,
                SimDuration::from_millis(20),
            )),
            PathConfig::symmetric(LinkConfig::constant(lte_mbps, SimDuration::from_millis(30))),
            PathConfig::symmetric(LinkConfig::constant(
                fiveg_mbps,
                SimDuration::from_millis(12),
            )),
        ],
        scheduler: SchedulerSpec::MinRtt,
        cc: CcKind::Reno,
    })
}

fn to_mask(enabled: &[bool]) -> PathMask {
    let mut m = PathMask::NONE;
    for (i, &e) in enabled.iter().enumerate() {
        if e {
            m = m.with(PathId(i as u8));
        }
    }
    m
}

/// Run one deadline transfer over three paths under the greedy
/// scheduler; returns per-path byte counts and whether the deadline held.
fn run_transfer(wifi_mbps: f64, size: u64, deadline: SimDuration) -> ([u64; 3], bool) {
    let mut sim = three_path_sim(wifi_mbps, 6.0, 20.0);
    // Costs: WiFi free, LTE mid, 5G dearest.
    let mut control = MpDashControl::new(
        vec![0.0, 1.0, 3.0],
        vec![
            Rate::from_mbps_f64(wifi_mbps),
            Rate::from_mbps_f64(6.0),
            Rate::from_mbps_f64(20.0),
        ],
        SchedulerParams::default().with_debounce(4),
        SimDuration::from_millis(250),
    );
    let enabled = control
        .mp_dash_enable(SimTime::ZERO, size, deadline)
        .to_vec();
    sim.set_initial_mask(to_mask(&enabled));
    sim.send_app(size);
    sim.schedule_app_timer(SimTime::ZERO + TICK, TICK_ID);

    let mut cursor = 0usize;
    let mut finish = SimTime::ZERO;
    while sim.delivered() < size {
        let Some((t, outcome)) = sim.step() else {
            panic!("drained at {}", sim.delivered())
        };
        finish = t;
        let records = sim.records();
        for r in &records[cursor..] {
            control.on_bytes(r.path.index(), r.t, r.len);
        }
        cursor = records.len();
        let busy = [
            sim.path_in_flight(PathId(0)) > 0,
            sim.path_in_flight(PathId(1)) > 0,
            sim.path_in_flight(PathId(2)) > 0,
        ];
        if let Some(enabled) = control.on_progress(t, sim.delivered(), &busy) {
            sim.set_desired_mask(to_mask(&enabled));
        }
        if matches!(
            outcome,
            mpdash::mptcp::StepOutcome::AppTimer { id: TICK_ID }
        ) {
            sim.schedule_app_timer(t + TICK, TICK_ID);
        }
    }
    (
        [
            sim.path_bytes(PathId(0)),
            sim.path_bytes(PathId(1)),
            sim.path_bytes(PathId(2)),
        ],
        finish.saturating_since(SimTime::ZERO) <= deadline,
    )
}

#[test]
fn ample_wifi_uses_only_the_cheapest_path() {
    // 4 MB in 10 s needs 3.2 Mbps; WiFi at 8 covers it alone.
    let (bytes, met) = run_transfer(8.0, 4_000_000, SimDuration::from_secs(10));
    assert!(met);
    assert_eq!(bytes[1], 0, "LTE untouched");
    assert_eq!(bytes[2], 0, "5G untouched");
}

#[test]
fn middling_wifi_adds_only_the_mid_cost_path() {
    // 8 MB in 10 s needs 6.4 Mbps; WiFi 3 + LTE 6 covers it; 5G must
    // stay silent because the greedy adds paths cheapest-first.
    let (bytes, met) = run_transfer(3.0, 8_000_000, SimDuration::from_secs(10));
    assert!(met, "WiFi+LTE must make the deadline");
    assert!(bytes[1] > 1_000_000, "LTE engaged: {}", bytes[1]);
    // The dearest path may catch a small spill while LTE's congestion
    // window ramps and its estimate briefly underestimates — the online
    // algorithm's documented bias toward spending rather than missing
    // (§7.2.2). It must stay a sliver, and LTE must dominate it.
    assert!(
        bytes[2] < 8_000_000 / 10,
        "5G spill too large: {} bytes",
        bytes[2]
    );
    assert!(
        bytes[1] > bytes[2] * 3,
        "LTE {} vs 5G {}",
        bytes[1],
        bytes[2]
    );
}

#[test]
fn tight_deadline_escalates_to_all_three() {
    // 16 MB in 6 s needs ~21 Mbps; every path must pull.
    let (bytes, met) = run_transfer(3.0, 16_000_000, SimDuration::from_secs(6));
    assert!(met, "aggregate ~29 Mbps should make it");
    assert!(bytes[0] > 0 && bytes[1] > 0 && bytes[2] > 0, "{bytes:?}");
    // The dearest path carried the bulk (it is also the fastest), but
    // WiFi was never idle — the preferred path always runs.
    assert!(bytes[0] > 1_000_000, "wifi pulled its weight: {}", bytes[0]);
}

#[test]
fn deadline_scaling_shifts_bytes_down_the_cost_ladder() {
    // Same 8 MB transfer; as deadlines relax the dear paths shed bytes.
    let tight = run_transfer(3.0, 8_000_000, SimDuration::from_secs(7)).0;
    let loose = run_transfer(3.0, 8_000_000, SimDuration::from_secs(16)).0;
    let dear_tight = tight[1] + tight[2];
    let dear_loose = loose[1] + loose[2];
    assert!(
        dear_loose < dear_tight,
        "loose {dear_loose} vs tight {dear_tight}"
    );
    assert!(loose[0] > tight[0], "WiFi carries more when time allows");
}
