//! The paper's headline result *shapes*, asserted end-to-end: who wins,
//! in which direction, and roughly where the crossovers fall. Absolute
//! numbers live in EXPERIMENTS.md; these tests pin the orderings.

use mpdash::core::optimal::optimal_cellular_bytes;
use mpdash::dash::abr::AbrKind;
use mpdash::dash::video::Video;
use mpdash::session::{
    FileTransfer, FileTransferConfig, SessionConfig, StreamingSession, TransportMode,
};
use mpdash::sim::SimDuration;
use mpdash::trace::field::{field_corpus, Scenario};
use mpdash::trace::table1;

fn short_video() -> Video {
    Video::new(
        "BBB-shape",
        &[0.58, 1.01, 1.47, 2.41, 3.94],
        SimDuration::from_secs(4),
        30,
    )
}

/// Figure 4's shape: the longer the deadline, the less cellular MP-DASH
/// uses, and it always meets the deadline when feasible.
#[test]
fn deadline_monotonicity() {
    let mut prev = u64::MAX;
    for d in [8u64, 9, 10] {
        let r = FileTransfer::run(
            FileTransferConfig::testbed(3.8, 3.0, TransportMode::mpdash_rate_based())
                .with_deadline(SimDuration::from_secs(d)),
        );
        assert!(!r.missed_deadline, "D={d}");
        assert!(r.cell_bytes < prev, "D={d}: {} !< {prev}", r.cell_bytes);
        prev = r.cell_bytes;
    }
}

/// Table 2's shape: the clairvoyant optimum never uses more cellular
/// than what the aggregate requires, and it is zero when WiFi suffices.
#[test]
fn optimal_bounds() {
    // WiFi 28.4 Mbps for 18 s moves ~63 MB: a 50 MB file needs no LTE.
    let wifi: Vec<u64> = vec![28_400_000 / 8 / 20; 18 * 20]; // 50 ms slots
    let cell: Vec<u64> = vec![19_100_000 / 8 / 20; 18 * 20];
    assert_eq!(optimal_cellular_bytes(&wifi, &cell, 50_000_000), Some(0));
    // And infeasible inputs are reported as such.
    assert_eq!(
        optimal_cellular_bytes(&wifi[..20], &cell[..20], 50_000_000),
        None
    );
}

/// Figure 3 / §5.2.2's shape: plain BBA oscillates between the two levels
/// bracketing the capacity; BBA-C locks the sustainable one.
#[test]
fn bba_oscillates_bbac_locks() {
    let mk = |abr| {
        SessionConfig::controlled(
            table1::synthetic_profile_pair(2.0, 1.5, 0.05, 9),
            abr,
            TransportMode::Vanilla,
        )
        .with_video(short_video())
    };
    let bba = StreamingSession::run(mk(AbrKind::Bba));
    let bbac = StreamingSession::run(mk(AbrKind::BbaC));
    let switches = |r: &mpdash::session::SessionReport| {
        r.chunks
            .windows(2)
            .filter(|w| w[0].level != w[1].level)
            .count()
    };
    assert!(
        switches(&bba) >= 4,
        "BBA should oscillate: {} switches",
        switches(&bba)
    );
    // BBA-C settles: at most the startup climb plus occasional probes.
    assert!(
        switches(&bbac) < switches(&bba) / 2,
        "BBA-C {} vs BBA {}",
        switches(&bbac),
        switches(&bba)
    );
    // BBA-C's steady level is the sustainable one (level 3 at ~3.4 Mbps).
    let last = bbac.chunks.last().unwrap().level;
    assert_eq!(last, 3);
}

/// §7.3.3's shape: savings grow with WiFi quality across the corpus's
/// three scenarios.
#[test]
fn savings_grow_with_wifi_quality() {
    let corpus = field_corpus();
    let pick = |s: Scenario| corpus.iter().find(|l| l.scenario == s).unwrap();
    let saving = |loc: &mpdash::trace::field::Location| {
        let base = StreamingSession::run(
            SessionConfig::at_location(loc, AbrKind::Festive, TransportMode::Vanilla)
                .with_video(short_video()),
        );
        let mp = StreamingSession::run(
            SessionConfig::at_location(loc, AbrKind::Festive, TransportMode::mpdash_rate_based())
                .with_video(short_video()),
        );
        assert_eq!(mp.qoe.stalls, 0, "{}", loc.name);
        mp.cell_saving_vs(&base)
    };
    let s1 = saving(pick(Scenario::WifiNeverSufficient));
    let s3 = saving(pick(Scenario::WifiAlwaysSufficient));
    assert!(
        s3 > s1,
        "scenario-3 saving {s3:.2} should exceed scenario-1 {s1:.2}"
    );
    assert!(s3 > 0.8, "good-WiFi location should save most: {s3:.2}");
}

/// Table 4's shape: MP-DASH costs less radio energy than throttling the
/// cellular path, at equal-or-better playback bitrate.
#[test]
fn mpdash_beats_throttling_on_energy_and_quality() {
    // This comparison needs a steady-state-dominated session: throttling
    // pays its dribbling tax continuously, while MP-DASH's costs
    // concentrate in the startup phase. 80 chunks (5+ minutes) is enough
    // for the paper's ordering to assert itself.
    let longer = Video::new(
        "BBB-throttle",
        &[0.58, 1.01, 1.47, 2.41, 3.94],
        SimDuration::from_secs(4),
        80,
    );
    let mk = |mode| {
        SessionConfig::controlled(
            table1::synthetic_profile_pair(3.8, 3.0, 0.10, 42),
            AbrKind::Gpac,
            mode,
        )
        .with_video(longer.clone())
    };
    let throttled = StreamingSession::run(mk(TransportMode::Throttled { kbps: 700 }));
    let mp = StreamingSession::run(mk(TransportMode::mpdash_rate_based()));
    assert!(
        mp.energy.total_j() < throttled.energy.total_j(),
        "mp {:.1} J vs throttled {:.1} J",
        mp.energy.total_j(),
        throttled.energy.total_j()
    );
    assert!(
        mp.qoe.mean_bitrate_mbps >= throttled.qoe.mean_bitrate_mbps,
        "mp {:.2} vs throttled {:.2}",
        mp.qoe.mean_bitrate_mbps,
        throttled.qoe.mean_bitrate_mbps
    );
}

/// §7.2.1's shape: a smaller α is more conservative — finishes earlier,
/// spends more cellular.
#[test]
fn alpha_tradeoff() {
    let run = |alpha| {
        FileTransfer::run(FileTransferConfig::testbed(
            3.8,
            3.0,
            TransportMode::MpDash {
                deadline: mpdash::dash::adapter::DeadlineMode::Rate,
                alpha,
            },
        ))
    };
    let tight = run(0.8);
    let loose = run(1.0);
    assert!(!tight.missed_deadline && !loose.missed_deadline);
    assert!(tight.cell_bytes > loose.cell_bytes);
    assert!(tight.duration <= loose.duration);
}
