//! §3.2's two symmetric preference policies, exercised end-to-end. The
//! paper's prototype supports "preferring WiFi over cellular, and
//! preferring cellular over WiFi" (the latter for users in motion) and
//! notes the policies are symmetric — which is precisely what these
//! tests check: flipping the preference flips which path is gated.

use mpdash::dash::abr::AbrKind;
use mpdash::dash::video::Video;
use mpdash::session::{
    PathPreference, SessionConfig, SessionReport, StreamingSession, TransportMode,
};
use mpdash::sim::SimDuration;
use mpdash::trace::table1;

fn short_video() -> Video {
    Video::new(
        "BBB-pref",
        &[0.58, 1.01, 1.47, 2.41, 3.94],
        SimDuration::from_secs(4),
        30,
    )
}

fn run(pref: PathPreference, wifi_mbps: f64, cell_mbps: f64) -> SessionReport {
    let cfg = SessionConfig::controlled(
        table1::synthetic_profile_pair(wifi_mbps, cell_mbps, 0.10, 42),
        AbrKind::Festive,
        TransportMode::mpdash_rate_based(),
    )
    .with_video(short_video())
    .with_preference(pref);
    StreamingSession::run(cfg)
}

#[test]
fn cellular_first_gates_wifi_instead() {
    // Symmetric network (5/5 Mbps) so only the preference differs.
    let wifi_first = run(PathPreference::WifiFirst, 5.0, 5.0);
    let cell_first = run(PathPreference::CellularFirst, 5.0, 5.0);

    assert_eq!(wifi_first.qoe.stalls, 0);
    assert_eq!(cell_first.qoe.stalls, 0);
    // Under WiFi-first the cellular share collapses; under cellular-first
    // the WiFi share collapses.
    assert!(
        wifi_first.cell_fraction() < 0.25,
        "wifi-first cell share {:.2}",
        wifi_first.cell_fraction()
    );
    let wifi_share =
        cell_first.wifi_bytes as f64 / (cell_first.wifi_bytes + cell_first.cell_bytes) as f64;
    assert!(
        wifi_share < 0.25,
        "cellular-first wifi share {wifi_share:.2}"
    );
    // Same QoE either way (the policies are symmetric, §3.2).
    assert!((wifi_first.qoe.mean_bitrate_mbps - cell_first.qoe.mean_bitrate_mbps).abs() < 0.3);
}

#[test]
fn cellular_first_still_uses_wifi_when_cellular_is_short() {
    // Cellular preferred but too slow for the top level: WiFi must be
    // deadline-gated in, mirroring the WiFi-first rescue behaviour.
    let r = run(PathPreference::CellularFirst, 5.0, 2.0);
    assert_eq!(r.qoe.stalls, 0);
    assert!(
        r.wifi_bytes > 5_000_000,
        "WiFi must top up a 2 Mbps cellular: {} bytes",
        r.wifi_bytes
    );
    assert!(
        r.qoe.mean_bitrate_mbps > 3.0,
        "quality held: {:.2}",
        r.qoe.mean_bitrate_mbps
    );
}
