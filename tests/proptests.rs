//! Property-based tests over the whole stack: random networks, sizes and
//! deadlines must never break the core invariants.

use mpdash::core::deadline::{CellDecision, DeadlineScheduler, SchedulerParams};
use mpdash::core::optimal::{optimal_min_cost, SlotItem};
use mpdash::link::LinkConfig;
use mpdash::link::PathId;
use mpdash::mptcp::{MptcpConfig, MptcpSim, PathMask};
use mpdash::session::{FileTransfer, FileTransferConfig, TransportMode};
use mpdash::sim::{Rate, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The transport delivers exactly the bytes sent, in order, for any
    /// reasonable two-path network — with and without random loss.
    #[test]
    fn mptcp_delivers_exactly(
        wifi_mbps in 0.5f64..20.0,
        cell_mbps in 0.5f64..20.0,
        wifi_rtt_ms in 5u64..120,
        cell_rtt_ms in 5u64..120,
        loss_pm in 0u32..30,          // per-mille
        bytes in 10_000u64..2_000_000,
        seed in 0u64..1000,
    ) {
        let p = loss_pm as f64 / 1000.0;
        let wifi = LinkConfig::constant(wifi_mbps, SimDuration::from_millis(wifi_rtt_ms / 2 + 1))
            .with_loss(p, seed);
        let cell = LinkConfig::constant(cell_mbps, SimDuration::from_millis(cell_rtt_ms / 2 + 1))
            .with_loss(p, seed ^ 0xDEAD);
        let mut sim = MptcpSim::new(MptcpConfig::two_path(wifi, cell));
        sim.send_app(bytes);
        let mut guard = 0u64;
        while sim.delivered() < bytes {
            prop_assert!(sim.step().is_some(), "queue drained early at {}", sim.delivered());
            guard += 1;
            prop_assert!(guard < 20_000_000, "runaway simulation");
        }
        prop_assert_eq!(sim.delivered(), bytes);
        // Conservation: paths carried at least the payload.
        prop_assert!(sim.path_bytes(PathId::WIFI) + sim.path_bytes(PathId::CELLULAR) >= bytes);
    }

    /// A masked-out path never carries new data.
    #[test]
    fn mask_is_enforced(
        bytes in 10_000u64..500_000,
        wifi_mbps in 1.0f64..10.0,
    ) {
        let wifi = LinkConfig::constant(wifi_mbps, SimDuration::from_millis(20));
        let cell = LinkConfig::constant(5.0, SimDuration::from_millis(25));
        let mut sim = MptcpSim::new(MptcpConfig::two_path(wifi, cell));
        sim.set_initial_mask(PathMask::only(PathId::WIFI));
        sim.send_app(bytes);
        while sim.delivered() < bytes {
            prop_assert!(sim.step().is_some());
        }
        prop_assert_eq!(sim.path_bytes(PathId::CELLULAR), 0);
    }

    /// Algorithm 1 under a *perfect* constant-rate estimate: the deadline
    /// is met whenever it is feasible for WiFi+cell, and cellular is
    /// never enabled when WiFi alone is clearly sufficient.
    #[test]
    fn algorithm1_feasibility(
        wifi_mbps in 1.0f64..10.0,
        size_mb in 1u64..8,
        deadline_s in 4u64..20,
    ) {
        let size = size_mb * 1_000_000;
        let window = SimDuration::from_secs(deadline_s);
        let wifi = Rate::from_mbps_f64(wifi_mbps);
        let mut s = DeadlineScheduler::new(SchedulerParams::default());
        s.enable(SimTime::ZERO, size, window);
        let d = s.on_progress(SimTime::ZERO, 0, wifi);
        let wifi_can = wifi.bytes_in(window);
        if wifi_can > size + size / 10 {
            prop_assert_eq!(d, CellDecision::NoChange, "ample WiFi must not enable cellular");
        }
        if wifi_can * 2 < size {
            prop_assert_eq!(d, CellDecision::Enable, "hopeless WiFi must enable cellular");
        }
    }

    /// The DP optimum is never undercut by any greedy subset: spot-check
    /// against the cheapest-first greedy.
    #[test]
    fn dp_at_most_greedy(
        costs in prop::collection::vec(0.0f64..10.0, 4..20),
        need_units in 1u64..12,
    ) {
        let items: Vec<SlotItem> = costs
            .iter()
            .map(|&c| SlotItem { bytes: 100, cost: c })
            .collect();
        let need = need_units * 100;
        let total: u64 = items.iter().map(|i| i.bytes).sum();
        let plan = optimal_min_cost(&items, need, 100);
        if need > total {
            prop_assert!(plan.is_none());
        } else {
            let plan = plan.unwrap();
            // Greedy: cheapest items first until covered.
            let mut sorted = costs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let greedy: f64 = sorted.iter().take(need_units as usize).sum();
            prop_assert!(plan.total_cost <= greedy + 1e-9,
                "dp {} > greedy {}", plan.total_cost, greedy);
            prop_assert!(plan.covered_bytes >= need);
        }
    }

    /// End-to-end: MP-DASH file transfers with feasible deadlines always
    /// complete, meet the deadline, and never use more cellular than the
    /// vanilla baseline.
    #[test]
    fn file_transfer_end_to_end(
        wifi_mbps in 2.0f64..8.0,
        cell_mbps in 1.0f64..6.0,
        size_mb in 2u64..6,
    ) {
        let size = size_mb * 1_000_000;
        // Deadline with 50% headroom over the aggregate's best-case
        // *goodput* (link rate less TCP/IP header overhead), plus slack
        // for connection ramp-up. The margin must be honest: Algorithm 1
        // at α = 1 trusts the estimate, and on a perfectly marginal
        // deadline a few percent of header overhead is the difference
        // between meeting and missing — the paper's reason for offering
        // α < 1 (§4).
        let goodput = (wifi_mbps + cell_mbps) * 1460.0 / 1500.0;
        let secs = (size as f64 * 8.0 / (goodput * 1e6) * 1.5).ceil() as u64 + 2;
        let mk = |mode| FileTransferConfig::testbed(wifi_mbps, cell_mbps, mode)
            .with_size(size)
            .with_deadline(SimDuration::from_secs(secs));
        let base = FileTransfer::run(mk(TransportMode::Vanilla));
        let mp = FileTransfer::run(mk(TransportMode::mpdash_rate_based()));
        prop_assert!(!mp.missed_deadline,
            "deadline {}s missed at {:.2}s (wifi {:.1}, cell {:.1}, {}MB)",
            secs, mp.duration.as_secs_f64(), wifi_mbps, cell_mbps, size_mb);
        prop_assert!(mp.cell_bytes <= base.cell_bytes,
            "mp {} > base {}", mp.cell_bytes, base.cell_bytes);
    }
}
