//! The shipped `scenarios/example.json` document drives the full
//! pipeline: parse → typed [`Scenario`] → session configs → batch runner.
//! This is the CLI's code path minus the printing, so the example file
//! can never rot.

use mpdash::dash::video::Video;
use mpdash::scenario::Scenario;
use mpdash::session::{run_batch_with, JobSpec, TransportMode};
use mpdash::sim::SimDuration;

fn example() -> Scenario {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/example.json");
    let text = std::fs::read_to_string(path).expect("example scenario readable");
    Scenario::from_json(&text).expect("example scenario parses")
}

#[test]
fn example_scenario_round_trips_into_session_configs() {
    let sc = example();
    assert_eq!(
        sc.name,
        "paper motivating network: WiFi 3.8 Mbps + LTE 3.0 Mbps"
    );
    assert_eq!(sc.buffer_secs, 40);

    let configs = sc.build().expect("example scenario builds");
    assert_eq!(configs.len(), 5, "one config per declared mode");
    let labels: Vec<&str> = configs.iter().map(|(l, _)| l.as_str()).collect();
    assert_eq!(
        labels,
        ["Baseline", "Rate", "Duration", "Throttle700k", "WiFi-only"]
    );
    for (_, cfg) in &configs {
        // Declared document fields land in the config.
        assert_eq!(cfg.buffer_capacity, SimDuration::from_secs(40));
        assert_eq!(cfg.wifi.delay * 2, SimDuration::from_millis(50));
        assert_eq!(cfg.cell.delay * 2, SimDuration::from_millis(55));
        assert_eq!(cfg.video.name(), "Big Buck Bunny");
        assert!((cfg.priors.0.as_mbps_f64() - 3.8).abs() < 0.4);
        assert!((cfg.priors.1.as_mbps_f64() - 3.0).abs() < 0.1);
    }
    assert_eq!(configs[3].1.mode, TransportMode::Throttled { kbps: 700 });
}

#[test]
fn example_scenario_runs_through_the_batch_runner() {
    let sc = example();
    let mut jobs = sc.jobs().expect("example scenario builds jobs");
    assert_eq!(jobs.len(), 5);
    // Keep the smoke test fast: shrink the video, preserve everything
    // else the document declared.
    for job in &mut jobs {
        let JobSpec::Session(cfg) = &mut job.spec else {
            panic!("scenario jobs are sessions");
        };
        cfg.video = Video::new("tiny", &[0.5, 1.0], SimDuration::from_secs(2), 4);
    }
    let results = run_batch_with(jobs, 2);
    assert_eq!(results.len(), 5);
    assert_eq!(results[0].label, "Baseline");
    for r in &results {
        let report = r.session().expect("session job");
        assert_eq!(report.qoe_all.chunks, 4, "{}: all chunks fetched", r.label);
        assert!(report.duration > SimDuration::ZERO);
    }
    // WiFi-only really stays off cellular; the baseline does not.
    let wifi_only = results.last().unwrap().session().expect("session job");
    assert_eq!(wifi_only.cell_bytes, 0);
    assert!(results[0].session().expect("session job").cell_bytes > 0);
}
