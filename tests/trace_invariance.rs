//! Property: tracing is strictly observe-only. Attaching any sink —
//! in-memory ring or NDJSON file — to a streaming session changes zero
//! bytes of its artifact JSON, across random networks, transport modes,
//! and injected fault scripts.

use mpdash::dash::abr::AbrKind;
use mpdash::dash::video::Video;
use mpdash::link::{FaultScript, GilbertElliott};
use mpdash::session::{
    NdjsonSink, RingSink, SessionConfig, StreamingSession, Tracer, TransportMode,
};
use mpdash::sim::{SimDuration, SimTime};
use proptest::prelude::*;
use std::sync::Arc;

fn tiny(wifi_mbps: f64, cell_mbps: f64, mode: TransportMode, faulted: bool) -> SessionConfig {
    let mut cfg =
        SessionConfig::controlled_mbps(wifi_mbps, cell_mbps, AbrKind::Festive, mode).with_video(
            Video::new("tiny", &[0.5, 1.0, 2.0], SimDuration::from_secs(2), 8),
        );
    if faulted {
        cfg = cfg.with_wifi_faults(
            FaultScript::new()
                .burst_loss(
                    SimTime::from_secs(2),
                    SimDuration::from_secs(5),
                    GilbertElliott::new(0.05, 0.30, 0.5),
                )
                .rate_collapse(SimTime::from_secs(4), SimDuration::from_secs(6), 0.2),
        );
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_sink_changes_zero_artifact_bytes(
        wifi_mbps in 1.0f64..8.0,
        cell_mbps in 0.5f64..6.0,
        use_mpdash in any::<bool>(),
        faulted in any::<bool>(),
    ) {
        let mode = if use_mpdash {
            TransportMode::mpdash_rate_based()
        } else {
            TransportMode::Vanilla
        };
        let base = StreamingSession::run(tiny(wifi_mbps, cell_mbps, mode, faulted))
            .summary_json()
            .to_pretty();

        let ring = Arc::new(RingSink::new(1024));
        let traced = StreamingSession::run(
            tiny(wifi_mbps, cell_mbps, mode, faulted).with_tracer(Tracer::new(ring.clone())),
        )
        .summary_json()
        .to_pretty();
        prop_assert_eq!(&base, &traced, "ring sink perturbed the artifact");
        prop_assert!(!ring.is_empty(), "ring sink observed no events");

        let dir = std::env::temp_dir().join("mpdash-trace-invariance");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t-{}-{wifi_mbps:.3}-{cell_mbps:.3}.ndjson", std::process::id()));
        let sink = NdjsonSink::create(&path).expect("ndjson sink");
        let traced = StreamingSession::run(
            tiny(wifi_mbps, cell_mbps, mode, faulted).with_tracer(Tracer::new(Arc::new(sink))),
        )
        .summary_json()
        .to_pretty();
        prop_assert_eq!(&base, &traced, "ndjson sink perturbed the artifact");
        let written = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        prop_assert!(written > 0, "ndjson sink wrote no events");
        let _ = std::fs::remove_file(&path);
    }
}
